//! The third execution tier: compile a [`Schedule`] to a static
//! **timing DAG** and evaluate it with no payloads, no request tables
//! and no per-op message objects.
//!
//! The event-driven backend ([`crate::simulate_scheduled`]) already
//! removed OS threads from the loop, but every replay still re-runs
//! the full discrete-event machinery: `RankMsg` construction with a
//! reference-counted payload clone per send, per-rank mailbox queues,
//! a request slab, linear match-queue scans and a `Vec<Completion>`
//! allocation per wait. None of that work depends on the seed —
//! a replay-valid schedule's op stream is a pure function of
//! `(rank, size, lengths)`, and per-channel matching is FIFO on both
//! sides, so *which send matches which receive* (and whether the pair
//! is eager or rendezvous) is a compile-time fact.
//!
//! [`TimingDag::compile`] resolves all of it once: every send/recv is
//! paired into a [`DagEdge`] (k-th send on a `(src, dst, tag)` channel
//! ↔ k-th receive), every request becomes a dense *completion slot*,
//! and every wait becomes a precomputed slot range. What remains at
//! evaluation time is exactly the part that IS seed-dependent: the
//! global order of fabric bookings (the noise stream and NIC/rack
//! occupancy are consumed in ascending local-time order) and the
//! resulting clock values. The evaluator therefore keeps the engine's
//! drain/apply/resume discipline — the same `(local time, rank,
//! program order)` merge over a tiny reusable heap — but walks flat
//! arrays and writes completion times into a flat `Vec<SimTime>`:
//! zero allocation and zero `Bytes` traffic in the steady state.
//!
//! # Equivalence
//!
//! The evaluator reproduces the engine's observable behaviour
//! bit-for-bit: virtual times, fabric statistics and traces, fault
//! and watchdog behaviour, and `SimError` values including the exact
//! diagnostic strings (compiled waits retain their original
//! [`ReqId`]s for that purpose). `tests/dag_equivalence.rs` and the
//! ci.sh differential gate enforce this against the events backend
//! across all seven collectives.
//!
//! # Batched evaluation
//!
//! [`DagEvaluator`] pins one fabric and one scratch to a compiled DAG
//! and resets them in place per repetition
//! ([`collsel_netsim::Fabric::reset`]), so a cell's thousands of
//! repetitions share one cluster clone and one set of buffers;
//! [`DagEvaluator::evaluate_reps`] is the batched entry point.

use crate::engine::{EngineReport, RECYCLE_RANK_CAP};
use crate::engine_ev::ScheduledRun;
use crate::error::SimError;
use crate::msg::{Peer, TagSel};
use crate::proto::{ReqId, WaitMode};
use crate::schedule::{SchedOp, Schedule};
use crate::sim::{
    build_fabric, check_ranks, report_from_engine, stash_dag_scratch, take_dag_scratch, SimOptions,
};
use collsel_netsim::{ClusterModel, Fabric, SimSpan, SimTime};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::fmt;
use std::sync::Arc;

/// Completion-slot sentinel: "this request has not completed".
const T_NONE: SimTime = SimTime::from_nanos(u64::MAX);
/// Slot/op index sentinel.
const NONE_IDX: u32 = u32::MAX;

/// Per-edge match state tags (stored beside a [`SimTime`]).
const EDGE_IDLE: u8 = 0;
/// The send side arrived first; the time is `delivered` for an eager
/// edge, the sender's post time for a rendezvous edge.
const EDGE_SEND: u8 = 1;
/// The receive was posted first; the time is its post time.
const EDGE_RECV: u8 = 2;
/// Both sides met; the edge is spent.
const EDGE_DONE: u8 = 3;

/// One compiled operation. Posts carry their resolved edge; blocking
/// ops carry their precomputed slot range.
#[derive(Debug, Clone, Copy)]
enum DagOp {
    /// `Isend`, resolved: the edge knows peer, size, protocol and slots.
    Send { edge: u32 },
    /// `Irecv`, resolved to the same edge as its matching send.
    Recv { edge: u32 },
    /// Local computation.
    Compute { span: SimSpan },
    /// Blocking wait over `wait_slots[off..off + len]`.
    Wait { off: u32, len: u32, mode: WaitMode },
    /// The runtime's ideal barrier.
    Barrier,
    /// Clock read; observations land in [`ScheduledRun::wtimes`].
    Wtime,
}

impl DagOp {
    /// Whether the op blocks the issuing rank (ends an apply window).
    fn is_block(self) -> bool {
        matches!(self, DagOp::Wait { .. } | DagOp::Barrier | DagOp::Wtime)
    }
}

/// One resolved send/recv pair (or unmatched half) of the program.
#[derive(Debug, Clone, Copy)]
struct DagEdge {
    src: u32,
    dst: u32,
    /// Payload length; only the length ever reaches the fabric.
    bytes: usize,
    /// Protocol, decided at compile time against the cluster's eager
    /// threshold.
    eager: bool,
    /// Completion slot of the send request (`NONE_IDX`: a receive with
    /// no matching send — it can never complete).
    send_slot: u32,
    /// Completion slot of the receive request (`NONE_IDX`: a send that
    /// is never received — eager sends still complete and book fabric
    /// time; rendezvous sends block forever).
    recv_slot: u32,
}

/// Why a [`Schedule`] could not be lowered to a [`TimingDag`].
///
/// Callers are expected to fall back to the events backend
/// ([`crate::simulate_scheduled`]), which replays the same schedule
/// without the `u32` index compression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileError {
    /// The schedule has more operations than the DAG's `u32` index
    /// space can address; compiling would silently truncate indices
    /// and mis-wire the DAG.
    TooLarge {
        /// Total operations in the offending schedule.
        ops: usize,
        /// The largest schedule the compiler accepts.
        max: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::TooLarge { ops, max } => write!(
                f,
                "schedule with {ops} ops exceeds the timing DAG's index \
                 space (max {max}); use the events backend"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

/// A [`Schedule`] lowered to flat arrays with matching, protocol
/// selection and wait-set resolution done once.
///
/// Compile with [`TimingDag::compile`]; evaluate with
/// [`simulate_dag`] (one-shot) or [`DagEvaluator`] (batched). The DAG
/// is immutable and shareable (`Arc`) across threads and repetitions.
#[derive(Debug)]
pub struct TimingDag {
    p: usize,
    /// The eager threshold the edges were classified against; the
    /// evaluation cluster must agree.
    eager_threshold: usize,
    /// All ranks' ops, concatenated in rank order.
    ops: Vec<DagOp>,
    /// `rank_bounds[r]..rank_bounds[r + 1]` is rank `r`'s op range.
    rank_bounds: Vec<u32>,
    /// For op index `i`: the first blocking op at or after `i` within
    /// the same rank's range (the rank's range end if none remain).
    next_block: Vec<u32>,
    edges: Vec<DagEdge>,
    /// Flattened wait slot lists (see [`DagOp::Wait`]).
    wait_slots: Vec<u32>,
    /// The original request ids, parallel to `wait_slots`, so deadlock
    /// and timeout diagnostics print exactly what the engine prints.
    wait_reqs: Vec<ReqId>,
    /// Total completion slots (one per send/recv request).
    slots: usize,
    /// For each slot: the op index of the `Wait` that references it
    /// (`NONE_IDX` if the request is never waited on). Lets a slot
    /// write notify the waiting rank instead of the evaluator scanning
    /// every rank's wait set per resume round.
    slot_wait: Vec<u32>,
    /// For each slot: the rank that posted (and therefore waits on) it.
    slot_rank: Vec<u32>,
    /// Per-rank `Wtime` counts, to pre-size observation vectors.
    wtime_counts: Vec<u32>,
}

impl TimingDag {
    /// Lowers `sched` to a timing DAG for clusters with `cluster`'s
    /// eager threshold.
    ///
    /// Matching is resolved per `(src, dst, tag)` channel: sends are
    /// applied in the sender's program order and receives in the
    /// receiver's, and the engine's match queues are FIFO within a
    /// channel, so the k-th send always pairs with the k-th receive
    /// regardless of seed — which is what makes this a compile-time
    /// step. Unmatched halves are kept as half-edges with the engine's
    /// semantics (an unreceived eager send still books fabric time and
    /// completes; an unreceived rendezvous send never completes).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::TooLarge`] when the schedule's total op
    /// count exceeds the `u32` index space ([`Self::MAX_OPS`]); the
    /// bare `as u32` narrowing below would otherwise silently truncate
    /// indices and mis-wire the DAG. Callers fall back to the events
    /// backend, which has no such limit.
    ///
    /// # Panics
    ///
    /// Panics on receive wildcards or waits on unposted requests;
    /// both are impossible in a [`crate::record_schedule`] product.
    pub fn compile(cluster: &ClusterModel, sched: &Schedule) -> Result<TimingDag, CompileError> {
        Self::compile_capped(cluster, sched, Self::MAX_OPS)
    }

    /// The largest total op count [`Self::compile`] accepts. One `u32`
    /// value (`NONE_IDX`) is reserved as the "no index" sentinel, and
    /// every compiled index space — ops, completion slots, wait-slot
    /// entries, edges — is bounded by the schedule's total op count
    /// (each op posts at most one request, and each request is waited
    /// on at most once), so a single guard covers them all.
    pub const MAX_OPS: usize = (u32::MAX - 1) as usize;

    fn compile_capped(
        cluster: &ClusterModel,
        sched: &Schedule,
        cap: usize,
    ) -> Result<TimingDag, CompileError> {
        if sched.total_ops() > cap {
            return Err(CompileError::TooLarge {
                ops: sched.total_ops(),
                max: cap,
            });
        }
        let p = sched.ranks();
        let eager_threshold = cluster.eager_threshold();
        let total = sched.total_ops();
        let mut ops: Vec<DagOp> = Vec::with_capacity(total);
        let mut rank_bounds = Vec::with_capacity(p + 1);
        let mut wait_slots: Vec<u32> = Vec::new();
        let mut wait_reqs: Vec<ReqId> = Vec::new();
        let mut wtime_counts = vec![0u32; p];
        let mut slots: u32 = 0;
        let mut slot_wait: Vec<u32> = Vec::new();
        let mut slot_rank: Vec<u32> = Vec::new();
        // Channel -> (sends: (op, slot, bytes), recvs: (op, slot)), in
        // program order per side. A BTreeMap keeps edge numbering
        // deterministic (the numbering never affects timing, but a
        // reproducible compile is easier to debug).
        type SendEnt = (u32, u32, usize);
        type RecvEnt = (u32, u32);
        let mut channels: BTreeMap<(u32, u32, u32), (Vec<SendEnt>, Vec<RecvEnt>)> = BTreeMap::new();
        let mut req_slot: HashMap<ReqId, u32> = HashMap::new();

        for (rank, rops) in sched.ops.iter().enumerate() {
            rank_bounds.push(ops.len() as u32);
            req_slot.clear();
            for op in rops {
                let idx = ops.len() as u32;
                match op {
                    SchedOp::Isend {
                        req,
                        dst,
                        tag,
                        payload,
                    } => {
                        let slot = slots;
                        slots += 1;
                        slot_wait.push(NONE_IDX);
                        slot_rank.push(rank as u32);
                        req_slot.insert(*req, slot);
                        channels
                            .entry((rank as u32, *dst as u32, *tag))
                            .or_default()
                            .0
                            .push((idx, slot, payload.len()));
                        ops.push(DagOp::Send { edge: NONE_IDX });
                    }
                    SchedOp::Irecv { req, src, tag } => {
                        let Peer::Rank(s) = src else {
                            panic!("wildcard receive source in a replay-valid schedule")
                        };
                        let TagSel::Exact(t) = tag else {
                            panic!("wildcard receive tag in a replay-valid schedule")
                        };
                        let slot = slots;
                        slots += 1;
                        slot_wait.push(NONE_IDX);
                        slot_rank.push(rank as u32);
                        req_slot.insert(*req, slot);
                        channels
                            .entry((*s as u32, rank as u32, *t))
                            .or_default()
                            .1
                            .push((idx, slot));
                        ops.push(DagOp::Recv { edge: NONE_IDX });
                    }
                    SchedOp::Compute { span } => ops.push(DagOp::Compute { span: *span }),
                    SchedOp::Wait { reqs, mode } => {
                        let off = wait_slots.len() as u32;
                        for id in reqs {
                            let slot = *req_slot
                                .get(id)
                                .expect("waited request was posted earlier in program order");
                            wait_slots.push(slot);
                            wait_reqs.push(*id);
                            slot_wait[slot as usize] = idx;
                        }
                        ops.push(DagOp::Wait {
                            off,
                            len: reqs.len() as u32,
                            mode: *mode,
                        });
                    }
                    SchedOp::Barrier => ops.push(DagOp::Barrier),
                    SchedOp::Wtime => {
                        wtime_counts[rank] += 1;
                        ops.push(DagOp::Wtime);
                    }
                }
            }
        }
        rank_bounds.push(ops.len() as u32);

        let mut edges = Vec::new();
        for ((src, dst, _tag), (sends, recvs)) in &channels {
            for k in 0..sends.len().max(recvs.len()) {
                let edge = edges.len() as u32;
                let bytes = sends.get(k).map_or(0, |&(_, _, b)| b);
                edges.push(DagEdge {
                    src: *src,
                    dst: *dst,
                    bytes,
                    eager: bytes <= eager_threshold,
                    send_slot: sends.get(k).map_or(NONE_IDX, |&(_, s, _)| s),
                    recv_slot: recvs.get(k).map_or(NONE_IDX, |&(_, s)| s),
                });
                if let Some(&(op, _, _)) = sends.get(k) {
                    ops[op as usize] = DagOp::Send { edge };
                }
                if let Some(&(op, _)) = recvs.get(k) {
                    ops[op as usize] = DagOp::Recv { edge };
                }
            }
        }

        let mut next_block = vec![0u32; ops.len()];
        for r in 0..p {
            let (start, end) = (rank_bounds[r] as usize, rank_bounds[r + 1] as usize);
            let mut nb = end as u32;
            for i in (start..end).rev() {
                if ops[i].is_block() {
                    nb = i as u32;
                }
                next_block[i] = nb;
            }
        }

        Ok(TimingDag {
            p,
            eager_threshold,
            ops,
            rank_bounds,
            next_block,
            edges,
            wait_slots,
            wait_reqs,
            slots: slots as usize,
            slot_wait,
            slot_rank,
            wtime_counts,
        })
    }

    /// Number of ranks the DAG was compiled for.
    pub fn ranks(&self) -> usize {
        self.p
    }

    /// Resolved send/recv pairs, including unmatched halves
    /// (diagnostics).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Total compiled operations across all ranks (diagnostics).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    fn rank_end(&self, r: usize) -> u32 {
        self.rank_bounds[r + 1]
    }
}

/// Where a rank stands during evaluation (mirrors the engine's view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Running,
    Blocked,
    Done,
}

/// Recyclable evaluation buffers: all per-rank, per-slot and per-edge
/// state plus the scheduling heap. One reset per repetition, zero
/// allocation in the steady state.
#[derive(Debug, Default)]
pub(crate) struct DagScratch {
    local: Vec<SimTime>,
    status: Vec<Status>,
    /// Global op index of the block a rank is parked on (`NONE_IDX`
    /// when running/done).
    blocked: Vec<u32>,
    /// Next op to apply, as a global op index.
    cursor: Vec<u32>,
    /// This phase's apply window end (the block op, or the rank end).
    limit: Vec<u32>,
    finish: Vec<SimTime>,
    /// Completion time per request slot (`T_NONE` = outstanding).
    slot_done: Vec<SimTime>,
    /// Match state per edge (tag, time) — see the `EDGE_*` constants.
    edge_state: Vec<(u8, SimTime)>,
    heap: BinaryHeap<Reverse<(SimTime, usize)>>,
    /// Resume candidates `(time, rank)`, maintained by notification: a
    /// rank is pushed when it blocks with a computable resume time and
    /// whenever a slot write changes the wait it is parked on. Entries
    /// are validated lazily on pop, so the evaluator never scans all
    /// ranks to find the minimal resume time.
    ready: BinaryHeap<Reverse<(SimTime, usize)>>,
    /// Ranks woken since the last apply phase (the next phase's
    /// runnable set).
    woken: Vec<usize>,
    /// Ranks that have finished (counter twin of `status == Done`).
    done: usize,
    /// Ranks currently blocked on a barrier.
    in_barrier: usize,
}

/// Slot/edge capacity kept alive in a recycled scratch; measurement
/// programs routinely compile to tens of thousands of slots, and one
/// outlier cell must not pin its buffers for a whole campaign.
const RECYCLE_SLOT_CAP: usize = 1 << 18;

impl DagScratch {
    fn reset(&mut self, dag: &TimingDag) {
        let p = dag.p;
        self.local.clear();
        self.local.resize(p, SimTime::ZERO);
        self.status.clear();
        self.status.resize(p, Status::Running);
        self.blocked.clear();
        self.blocked.resize(p, NONE_IDX);
        self.cursor.clear();
        self.cursor.extend(dag.rank_bounds[..p].iter().copied());
        self.limit.clear();
        self.limit.resize(p, 0);
        self.finish.clear();
        self.finish.resize(p, SimTime::ZERO);
        self.slot_done.clear();
        self.slot_done.resize(dag.slots, T_NONE);
        self.edge_state.clear();
        self.edge_state
            .resize(dag.edges.len(), (EDGE_IDLE, SimTime::ZERO));
        self.heap.clear();
        self.ready.clear();
        self.woken.clear();
        self.woken.extend(0..p);
        self.done = 0;
        self.in_barrier = 0;
    }

    /// Caps recycled capacity (see [`crate::engine::EngineScratch`]'s
    /// equivalent): rank-indexed vectors at the engine's rank cap,
    /// slot/edge-indexed vectors at [`RECYCLE_SLOT_CAP`].
    pub(crate) fn shrink(&mut self) {
        let rank_cap = RECYCLE_RANK_CAP;
        self.local.truncate(rank_cap);
        self.local.shrink_to(rank_cap);
        self.status.truncate(rank_cap);
        self.status.shrink_to(rank_cap);
        self.blocked.truncate(rank_cap);
        self.blocked.shrink_to(rank_cap);
        self.cursor.truncate(rank_cap);
        self.cursor.shrink_to(rank_cap);
        self.limit.truncate(rank_cap);
        self.limit.shrink_to(rank_cap);
        self.finish.truncate(rank_cap);
        self.finish.shrink_to(rank_cap);
        self.slot_done.truncate(RECYCLE_SLOT_CAP);
        self.slot_done.shrink_to(RECYCLE_SLOT_CAP);
        self.edge_state.truncate(RECYCLE_SLOT_CAP);
        self.edge_state.shrink_to(RECYCLE_SLOT_CAP);
        self.heap.shrink_to(rank_cap);
        self.ready.shrink_to(rank_cap);
        self.woken.truncate(rank_cap);
        self.woken.shrink_to(rank_cap);
    }
}

/// One evaluation pass: borrows the DAG, a fabric and scratch.
struct DagRun<'a> {
    dag: &'a TimingDag,
    fabric: &'a mut Fabric,
    s: &'a mut DagScratch,
    deadline: Option<SimTime>,
    wtimes: Vec<Vec<SimTime>>,
}

impl DagRun<'_> {
    fn run(mut self) -> Result<ScheduledRun, SimError> {
        self.s.reset(self.dag);
        loop {
            self.apply_pending();
            if self.s.done == self.dag.p {
                let report = EngineReport {
                    finish_times: self.s.finish.clone(),
                    stats: self.fabric.stats(),
                    trace: self.fabric.take_trace(),
                };
                return Ok(ScheduledRun {
                    report: report_from_engine(report),
                    wtimes: self.wtimes,
                });
            }
            match self.resume_minimal() {
                Ok(0) => {
                    return Err(SimError::Deadlock {
                        detail: self.deadlock_detail(),
                    })
                }
                Ok(_) => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// The engine's apply phase over compiled windows: queued ops of
    /// the runnable ranks merged by (local time, rank, program order),
    /// with the identical tie-break so fabric bookings land in the
    /// engine's order. A rank keeps applying inline while its `(local
    /// time, rank)` key still sorts before the heap's head — the pop
    /// it would win anyway — so lockstep-free stretches cost no heap
    /// traffic at all.
    fn apply_pending(&mut self) {
        debug_assert!(self.s.heap.is_empty());
        while let Some(r) = self.s.woken.pop() {
            let c = self.s.cursor[r];
            self.s.limit[r] = if c < self.dag.rank_end(r) {
                self.dag.next_block[c as usize]
            } else {
                c
            };
            self.s.heap.push(Reverse((self.s.local[r], r)));
        }
        while let Some(Reverse((t, r))) = self.s.heap.pop() {
            if t != self.s.local[r] {
                self.s.heap.push(Reverse((self.s.local[r], r)));
                continue;
            }
            if self.s.status[r] != Status::Running {
                continue;
            }
            loop {
                let limit = self.s.limit[r];
                if self.s.cursor[r] < limit {
                    let op = self.dag.ops[self.s.cursor[r] as usize];
                    self.s.cursor[r] += 1;
                    self.apply_post(r, op);
                    if let Some(&Reverse(head)) = self.s.heap.peek() {
                        if (self.s.local[r], r) > head {
                            self.s.heap.push(Reverse((self.s.local[r], r)));
                            break;
                        }
                    }
                } else if limit == self.dag.rank_end(r) {
                    self.s.status[r] = Status::Done;
                    self.s.finish[r] = self.s.local[r];
                    self.s.done += 1;
                    break;
                } else {
                    self.s.status[r] = Status::Blocked;
                    self.s.blocked[r] = limit;
                    self.s.cursor[r] = limit + 1;
                    match self.dag.ops[limit as usize] {
                        DagOp::Barrier => self.s.in_barrier += 1,
                        DagOp::Wtime => self.s.ready.push(Reverse((self.s.local[r], r))),
                        DagOp::Wait { off, len, mode } => {
                            if let Some(at) = self.wait_ready_at(r, off, len, mode) {
                                self.s.ready.push(Reverse((at, r)));
                            }
                        }
                        _ => unreachable!("next_block points at a blocking op"),
                    }
                    break;
                }
            }
        }
    }

    /// Writes a completion slot and notifies its owner if that rank is
    /// currently parked on the wait referencing the slot: the updated
    /// resume time (if now computable) joins the ready heap, replacing
    /// the engine's per-round scan over every blocked rank.
    fn complete_slot(&mut self, slot: u32, t: SimTime) {
        self.s.slot_done[slot as usize] = t;
        let w = self.dag.slot_wait[slot as usize];
        if w == NONE_IDX {
            return;
        }
        let owner = self.dag.slot_rank[slot as usize] as usize;
        if self.s.status[owner] == Status::Blocked && self.s.blocked[owner] == w {
            let DagOp::Wait { off, len, mode } = self.dag.ops[w as usize] else {
                unreachable!("slot_wait points at a wait op")
            };
            if let Some(at) = self.wait_ready_at(owner, off, len, mode) {
                self.s.ready.push(Reverse((at, owner)));
            }
        }
    }

    fn apply_post(&mut self, r: usize, op: DagOp) {
        match op {
            DagOp::Send { edge } => self.apply_send(r, edge),
            DagOp::Recv { edge } => self.apply_recv(r, edge),
            DagOp::Compute { span } => self.s.local[r] += span,
            _ => unreachable!("blocking ops end the apply window"),
        }
    }

    fn apply_send(&mut self, src: usize, edge: u32) {
        let e = self.dag.edges[edge as usize];
        debug_assert_eq!(e.src as usize, src);
        self.s.local[src] += self.fabric.send_overhead(src);
        let ready = self.s.local[src];
        let dst = e.dst as usize;
        if e.eager {
            // Eager: book the wire immediately; the send completes at
            // `send_done` whether or not a receive ever shows up.
            let plan = self.fabric.plan_transfer(src, dst, e.bytes, ready);
            self.complete_slot(e.send_slot, plan.send_done);
            if e.recv_slot == NONE_IDX {
                return;
            }
            let (tag, t) = self.s.edge_state[edge as usize];
            if tag == EDGE_RECV {
                let done = plan.delivered.max(t) + self.fabric.recv_overhead(dst);
                self.complete_slot(e.recv_slot, done);
                self.s.edge_state[edge as usize].0 = EDGE_DONE;
            } else {
                self.s.edge_state[edge as usize] = (EDGE_SEND, plan.delivered);
            }
        } else {
            let (tag, t) = self.s.edge_state[edge as usize];
            if e.recv_slot != NONE_IDX && tag == EDGE_RECV {
                self.rendezvous(&e, ready, t);
                self.s.edge_state[edge as usize].0 = EDGE_DONE;
            } else {
                // No receive yet (or ever): the handshake stalls and
                // the send request stays outstanding.
                self.s.edge_state[edge as usize] = (EDGE_SEND, ready);
            }
        }
    }

    fn apply_recv(&mut self, dst: usize, edge: u32) {
        let e = self.dag.edges[edge as usize];
        debug_assert_eq!(e.dst as usize, dst);
        let posted_at = self.s.local[dst];
        if e.send_slot == NONE_IDX {
            // No sender ever: the request can never complete.
            self.s.edge_state[edge as usize] = (EDGE_RECV, posted_at);
            return;
        }
        let (tag, t) = self.s.edge_state[edge as usize];
        if tag == EDGE_SEND {
            if e.eager {
                let done = t.max(posted_at) + self.fabric.recv_overhead(dst);
                self.complete_slot(e.recv_slot, done);
            } else {
                self.rendezvous(&e, t, posted_at);
            }
            self.s.edge_state[edge as usize].0 = EDGE_DONE;
        } else {
            self.s.edge_state[edge as usize] = (EDGE_RECV, posted_at);
        }
    }

    /// Books the data transfer of a rendezvous pair whose two sides
    /// have now both been posted (the engine's formula verbatim).
    fn rendezvous(&mut self, e: &DagEdge, send_posted: SimTime, recv_posted: SimTime) {
        let lc = self.fabric.control_latency();
        let ready = (send_posted + lc).max(recv_posted) + lc;
        let plan = self
            .fabric
            .plan_transfer(e.src as usize, e.dst as usize, e.bytes, ready);
        self.complete_slot(e.send_slot, plan.send_done);
        let recv_done = plan.delivered + self.fabric.recv_overhead(e.dst as usize);
        self.complete_slot(e.recv_slot, recv_done);
    }

    fn check_deadline(&self, next: SimTime) -> Result<(), SimError> {
        match self.deadline {
            Some(d) if next > d => Err(SimError::Timeout {
                deadline: d.saturating_since(SimTime::ZERO),
                detail: format!(
                    "next event at {next} lies past the deadline; {}",
                    self.deadlock_detail()
                ),
            }),
            _ => Ok(()),
        }
    }

    /// The engine's resume phase: barrier completion when every alive
    /// rank is in it, otherwise wake exactly the blocked ranks
    /// attaining the minimal resume time.
    ///
    /// The minimum comes from the notification-fed ready heap rather
    /// than a scan: every blocked rank with a computable resume time
    /// has an entry carrying exactly that time (pushed when it blocked,
    /// refreshed by [`complete_slot`](Self::complete_slot) on every
    /// relevant slot write), so the smallest entry that still matches
    /// its rank's current state IS the global minimum, and ties pop
    /// consecutively. Stale entries — the rank already woke, or a
    /// later `WaitAny` completion lowered its time — fail the match
    /// and are discarded.
    fn resume_minimal(&mut self) -> Result<usize, SimError> {
        let p = self.dag.p;
        if self.s.done == 0 && self.s.in_barrier == p {
            let mut barrier_t = SimTime::ZERO;
            for r in 0..p {
                barrier_t = barrier_t.max(self.s.local[r]);
            }
            self.check_deadline(barrier_t)?;
            self.s.in_barrier = 0;
            for r in 0..p {
                self.wake(r, barrier_t);
            }
            return Ok(p);
        }

        let mut woken = 0usize;
        let mut best: Option<SimTime> = None;
        while let Some(&Reverse((t, r))) = self.s.ready.peek() {
            if best.is_some_and(|b| t != b) {
                break;
            }
            self.s.ready.pop();
            if self.s.status[r] != Status::Blocked || self.resume_at(r) != Some(t) {
                continue;
            }
            if best.is_none() {
                self.check_deadline(t)?;
                best = Some(t);
            }
            if matches!(self.dag.ops[self.s.blocked[r] as usize], DagOp::Wtime) {
                self.wtimes[r].push(t);
            }
            self.wake(r, t);
            woken += 1;
        }
        Ok(woken)
    }

    fn resume_at(&self, r: usize) -> Option<SimTime> {
        if self.s.status[r] != Status::Blocked {
            return None;
        }
        match self.dag.ops[self.s.blocked[r] as usize] {
            DagOp::Wtime => Some(self.s.local[r]),
            DagOp::Wait { off, len, mode } => self.wait_ready_at(r, off, len, mode),
            _ => None,
        }
    }

    fn wait_ready_at(&self, r: usize, off: u32, len: u32, mode: WaitMode) -> Option<SimTime> {
        let slots = &self.dag.wait_slots[off as usize..(off + len) as usize];
        match mode {
            WaitMode::All => {
                let mut at = self.s.local[r];
                for &slot in slots {
                    let t = self.s.slot_done[slot as usize];
                    if t == T_NONE {
                        return None;
                    }
                    at = at.max(t);
                }
                Some(at)
            }
            WaitMode::Any => {
                let earliest = slots
                    .iter()
                    .map(|&slot| self.s.slot_done[slot as usize])
                    .filter(|&t| t != T_NONE)
                    .min()?;
                Some(earliest.max(self.s.local[r]))
            }
        }
    }

    fn wake(&mut self, r: usize, now: SimTime) {
        self.s.local[r] = now;
        self.s.status[r] = Status::Running;
        self.s.blocked[r] = NONE_IDX;
        self.s.woken.push(r);
    }

    fn deadlock_detail(&self) -> String {
        let mut parts = Vec::new();
        for r in 0..self.dag.p {
            match self.s.status[r] {
                Status::Done => {}
                Status::Running => parts.push(format!("rank {r}: running (internal error)")),
                Status::Blocked => {
                    let what = match self.dag.ops[self.s.blocked[r] as usize] {
                        DagOp::Barrier => "barrier".to_owned(),
                        DagOp::Wtime => "wtime (internal error)".to_owned(),
                        DagOp::Wait { off, len, mode } => {
                            let outstanding: Vec<String> = (off..off + len)
                                .filter(|&i| {
                                    let slot = self.dag.wait_slots[i as usize];
                                    self.s.slot_done[slot as usize] == T_NONE
                                })
                                .map(|i| format!("req {}", self.dag.wait_reqs[i as usize]))
                                .collect();
                            format!("wait[{mode:?}] on {}", outstanding.join(", "))
                        }
                        _ => "unknown".to_owned(),
                    };
                    parts.push(format!(
                        "rank {r}: blocked on {what} at t={}",
                        self.s.local[r]
                    ));
                }
            }
        }
        parts.join("; ")
    }
}

/// Validates a (cluster, dag) pairing before evaluation.
fn check_dag(cluster: &ClusterModel, dag: &TimingDag) {
    check_ranks(cluster, dag.p);
    assert_eq!(
        cluster.eager_threshold(),
        dag.eager_threshold,
        "DAG compiled for eager threshold {} evaluated on cluster {} with threshold {}",
        dag.eager_threshold,
        cluster.name(),
        cluster.eager_threshold()
    );
}

fn run_once(
    dag: &TimingDag,
    fabric: &mut Fabric,
    scratch: &mut DagScratch,
    opts: SimOptions,
) -> Result<ScheduledRun, SimError> {
    let wtimes = dag
        .wtime_counts
        .iter()
        .map(|&n| Vec::with_capacity(n as usize))
        .collect();
    DagRun {
        dag,
        fabric,
        s: scratch,
        deadline: opts.deadline.map(|d| SimTime::ZERO + d),
        wtimes,
    }
    .run()
}

/// Evaluates a compiled [`TimingDag`] once under `seed` and `opts`.
///
/// Produces a [`ScheduledRun`] bit-identical to
/// [`crate::simulate_scheduled`] replaying the source schedule with the
/// same cluster, seed and options — including `SimError` values under
/// fault plans and watchdog deadlines. For many repetitions of one
/// cell, prefer [`DagEvaluator`], which also reuses the fabric.
///
/// # Errors
///
/// Same as [`crate::simulate_with`].
///
/// # Panics
///
/// Panics if the DAG's rank count exceeds the cluster's slots or the
/// cluster's eager threshold differs from the compile-time one.
pub fn simulate_dag(
    cluster: &ClusterModel,
    dag: &TimingDag,
    seed: u64,
    opts: SimOptions,
) -> Result<ScheduledRun, SimError> {
    check_dag(cluster, dag);
    let mut fabric = build_fabric(cluster, seed, opts);
    let mut scratch = take_dag_scratch();
    let result = run_once(dag, &mut fabric, &mut scratch, opts);
    stash_dag_scratch(scratch);
    result
}

/// A compiled DAG pinned to one cluster, with a resettable fabric and
/// recycled scratch: the batched evaluation entry point.
///
/// Each [`run`](DagEvaluator::run) resets the fabric in place
/// ([`Fabric::reset`]) instead of re-cloning the cluster model, so a
/// cell's whole repetition stream shares one allocation set.
#[derive(Debug)]
pub struct DagEvaluator {
    dag: Arc<TimingDag>,
    fabric: Fabric,
    scratch: DagScratch,
}

impl DagEvaluator {
    /// Pins `dag` to `cluster`.
    ///
    /// # Panics
    ///
    /// Same as [`simulate_dag`].
    pub fn new(cluster: &ClusterModel, dag: Arc<TimingDag>) -> DagEvaluator {
        check_dag(cluster, &dag);
        DagEvaluator {
            dag,
            fabric: Fabric::new(cluster.clone(), 0),
            scratch: DagScratch::default(),
        }
    }

    /// The compiled DAG this evaluator runs.
    pub fn dag(&self) -> &TimingDag {
        &self.dag
    }

    /// One repetition under `seed` and `opts`; bit-identical to
    /// [`simulate_dag`] on the same cluster.
    ///
    /// # Errors
    ///
    /// Same as [`crate::simulate_with`].
    pub fn run(&mut self, seed: u64, opts: SimOptions) -> Result<ScheduledRun, SimError> {
        self.fabric.reset(seed);
        if opts.traced {
            self.fabric.enable_tracing();
        } else {
            self.fabric.disable_tracing();
        }
        run_once(&self.dag, &mut self.fabric, &mut self.scratch, opts)
    }

    /// `n` repetitions under seeds `base_seed + i` (wrapping), the
    /// convention of the adaptive measurement tiers.
    ///
    /// # Errors
    ///
    /// Fails on the first repetition that fails, same as
    /// [`crate::simulate_with`].
    pub fn evaluate_reps(
        &mut self,
        base_seed: u64,
        n: usize,
        opts: SimOptions,
    ) -> Result<Vec<ScheduledRun>, SimError> {
        (0..n)
            .map(|i| self.run(base_seed.wrapping_add(i as u64), opts))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use crate::schedule::record_schedule;
    use crate::simulate_scheduled;
    use collsel_netsim::FaultPlan;
    use collsel_support::Bytes;

    /// Sends both below and above the eager threshold, plus barrier,
    /// compute and wtime traffic. Nonblocking, so the ring is
    /// deadlock-free at rendezvous sizes too.
    fn mixed_ring<C: Comm>(ctx: &mut C, bytes: usize) {
        let p = ctx.size();
        let next = (ctx.rank() + 1) % p;
        let prev = (ctx.rank() + p - 1) % p;
        ctx.barrier();
        let _ = ctx.wtime();
        let r0 = ctx.irecv(prev, 0);
        let s0 = ctx.isend(next, 0, Bytes::from(vec![1u8; bytes]));
        let _ = ctx.wait_recv(r0);
        ctx.wait_send(s0);
        ctx.compute(SimSpan::from_nanos(500));
        let r1 = ctx.irecv(next, 1);
        let s1 = ctx.isend(prev, 1, Bytes::from(vec![2u8; 64]));
        let _ = ctx.wait_recv(r1);
        ctx.wait_send(s1);
        ctx.barrier();
        let _ = ctx.wtime();
    }

    fn assert_identical(a: &ScheduledRun, b: &ScheduledRun) {
        assert_eq!(a.report.finish_times, b.report.finish_times);
        assert_eq!(a.report.makespan, b.report.makespan);
        assert_eq!(a.report.messages, b.report.messages);
        assert_eq!(a.report.bytes, b.report.bytes);
        assert_eq!(a.report.shm_messages, b.report.shm_messages);
        assert_eq!(a.report.trace, b.report.trace);
        assert_eq!(a.wtimes, b.wtimes);
    }

    #[test]
    fn dag_matches_replay_bit_for_bit_eager_and_rendezvous() {
        let cluster = ClusterModel::grisou();
        for bytes in [512usize, 256 * 1024] {
            let sched = record_schedule(&cluster, 6, move |rc| mixed_ring(rc, bytes))
                .expect("ring records cleanly");
            let dag = TimingDag::compile(&cluster, &sched).expect("compiles");
            for seed in [0u64, 1, 42, 0xDEAD] {
                let opts = SimOptions {
                    traced: true,
                    deadline: None,
                };
                let replay = simulate_scheduled(&cluster, &sched, seed, opts).expect("replay");
                let fast = simulate_dag(&cluster, &dag, seed, opts).expect("dag");
                assert_identical(&replay, &fast);
            }
        }
    }

    #[test]
    fn dag_matches_replay_under_faults() {
        let base = ClusterModel::gros();
        let sched = record_schedule(&base, 5, |rc| mixed_ring(rc, 128 * 1024)).expect("records");
        let dag = TimingDag::compile(&base, &sched).expect("compiles");
        for spec in ["degraded-link:3", "straggler:11", "brownout:5", "chaos:7"] {
            let plan = FaultPlan::parse(spec, base.nodes()).expect("canned plan");
            let faulted = base.clone().with_faults(plan);
            for seed in [2u64, 99] {
                let replay = simulate_scheduled(&faulted, &sched, seed, SimOptions::default())
                    .expect("replay");
                let fast = simulate_dag(&faulted, &dag, seed, SimOptions::default()).expect("dag");
                assert_identical(&replay, &fast);
            }
        }
    }

    #[test]
    fn dag_timeout_matches_replay_error_exactly() {
        let cluster = ClusterModel::gros();
        let sched = record_schedule(&cluster, 4, |rc| mixed_ring(rc, 64 * 1024)).expect("records");
        let dag = TimingDag::compile(&cluster, &sched).expect("compiles");
        let opts = SimOptions::with_deadline(SimSpan::from_nanos(10));
        let replay = simulate_scheduled(&cluster, &sched, 3, opts).expect_err("deadline must trip");
        let fast = simulate_dag(&cluster, &dag, 3, opts).expect_err("deadline must trip");
        assert_eq!(replay, fast, "timeout errors must be value-identical");
    }

    #[test]
    fn evaluator_reps_match_one_shot_runs() {
        let cluster = ClusterModel::grisou();
        let sched = record_schedule(&cluster, 8, |rc| mixed_ring(rc, 4096)).expect("records");
        let dag = Arc::new(TimingDag::compile(&cluster, &sched).expect("compiles"));
        let mut ev = DagEvaluator::new(&cluster, Arc::clone(&dag));
        let reps = ev
            .evaluate_reps(100, 5, SimOptions::default())
            .expect("reps run");
        for (i, rep) in reps.iter().enumerate() {
            let solo = simulate_dag(&cluster, &dag, 100 + i as u64, SimOptions::default())
                .expect("one-shot");
            assert_identical(rep, &solo);
        }
    }

    #[test]
    fn oversized_schedule_is_rejected_not_truncated() {
        let cluster = ClusterModel::gros();
        let sched = record_schedule(&cluster, 4, |rc| mixed_ring(rc, 1024)).expect("records");
        // Exercise the guard with a tiny cap (a real >u32::MAX schedule
        // would need >64 GiB of ops); the public entry point uses the
        // same code path with cap = MAX_OPS.
        let cap = sched.total_ops() - 1;
        let err = TimingDag::compile_capped(&cluster, &sched, cap)
            .expect_err("over-cap schedule must be rejected");
        assert_eq!(
            err,
            CompileError::TooLarge {
                ops: sched.total_ops(),
                max: cap,
            }
        );
        assert!(err.to_string().contains("events backend"));
        // At exactly the cap the schedule still compiles, and the
        // public entry point accepts it too.
        assert!(TimingDag::compile_capped(&cluster, &sched, sched.total_ops()).is_ok());
        assert!(TimingDag::compile(&cluster, &sched).is_ok());
    }

    #[test]
    fn unreceived_eager_send_still_completes_and_books_traffic() {
        let cluster = ClusterModel::gros();
        // Rank 0 sends a small message nobody receives; both ranks
        // finish (the eager send completes at send_done).
        let sched = record_schedule(&cluster, 2, |rc| {
            if rc.rank() == 0 {
                rc.send(1, 9, Bytes::from_static(b"orphan"));
            }
            // A matched pair keeps the recording run meaningful.
            if rc.rank() == 0 {
                rc.send(1, 0, Bytes::from_static(b"x"));
            } else {
                let _ = rc.recv(0, 0);
            }
        })
        .expect("records");
        let dag = TimingDag::compile(&cluster, &sched).expect("compiles");
        let replay = simulate_scheduled(&cluster, &sched, 5, SimOptions::default()).expect("ok");
        let fast = simulate_dag(&cluster, &dag, 5, SimOptions::default()).expect("ok");
        assert_identical(&replay, &fast);
        assert_eq!(fast.report.messages, 2, "orphan eager send hits the wire");
    }
}
