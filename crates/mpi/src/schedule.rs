//! The schedule IR: a collective algorithm compiled to explicit
//! per-rank operation sequences.
//!
//! A [`Schedule`] is recorded by running the implementing code once
//! against a [`RecCtx`] (see [`record_schedule`]) and can then be
//! replayed any number of times by the event-driven backend
//! ([`crate::simulate_scheduled`]) without OS threads, locks or
//! condvars in the loop.
//!
//! # Validity
//!
//! Record-once/replay-many is sound only for programs whose operation
//! stream depends solely on `(rank, size)` and statically known payload
//! shapes — never on timing, the noise seed, or received payload
//! *contents*. All collective algorithms in `collsel-coll` satisfy
//! this: their control flow is a pure function of rank, world size and
//! message lengths. Programs that use receive wildcards
//! ([`Peer::Any`] / [`TagSel::Any`]) or `wait_any_recv` are rejected at
//! recording time with [`RecordError::Unsupported`], because their
//! replay could diverge from a live run under a different seed.

use crate::comm::Comm;
use crate::ctx::{Ctx, RecvRequest, SendRequest};
use crate::error::SimError;
use crate::msg::{Peer, RecvStatus, Tag, TagSel};
use crate::proto::{ReqId, WaitMode};
use crate::sim::simulate;
use collsel_netsim::{ClusterModel, SimSpan, SimTime};
use collsel_support::Bytes;

/// One recorded operation of a rank's program.
#[derive(Debug, Clone)]
pub(crate) enum SchedOp {
    /// Non-blocking send: `PostOp::Isend` on replay.
    Isend {
        req: ReqId,
        dst: usize,
        tag: Tag,
        payload: Bytes,
    },
    /// Non-blocking receive: `PostOp::Irecv` on replay.
    Irecv { req: ReqId, src: Peer, tag: TagSel },
    /// Local computation: `PostOp::Compute` on replay.
    Compute { span: SimSpan },
    /// Blocking wait on a request set: `BlockOp::Wait` on replay.
    Wait { reqs: Vec<ReqId>, mode: WaitMode },
    /// The runtime's ideal barrier: `BlockOp::Barrier` on replay.
    Barrier,
    /// Clock read: `BlockOp::Wtime` on replay; the observed time is
    /// collected into [`crate::ScheduledRun::wtimes`].
    Wtime,
}

/// A compiled SPMD program: for each rank, the exact sequence of
/// engine operations its code issues.
///
/// Produced by [`record_schedule`]; consumed by
/// [`crate::simulate_scheduled`]. Cloning is cheap-ish (payload bytes
/// are reference-counted), but replaying borrows the schedule, so one
/// recording typically serves a whole campaign.
#[derive(Debug, Clone)]
pub struct Schedule {
    pub(crate) ops: Vec<Vec<SchedOp>>,
}

impl Schedule {
    /// Number of ranks this schedule was recorded for.
    pub fn ranks(&self) -> usize {
        self.ops.len()
    }

    /// Total recorded operations across all ranks (diagnostics).
    pub fn total_ops(&self) -> usize {
        self.ops.iter().map(Vec::len).sum()
    }
}

/// Why a program could not be compiled to a [`Schedule`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RecordError {
    /// The program used a construct whose replay could diverge from a
    /// live run (receive wildcards, `wait_any_recv`).
    Unsupported {
        /// First rank that used the construct.
        rank: usize,
        /// Which construct it was.
        what: String,
    },
    /// The recording run itself failed.
    Sim(SimError),
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Unsupported { rank, what } => {
                write!(f, "rank {rank} used {what}, which cannot be replayed")
            }
            RecordError::Sim(e) => write!(f, "recording run failed: {e}"),
        }
    }
}

impl std::error::Error for RecordError {}

/// A [`Comm`] implementor that records every operation into a
/// [`Schedule`] while delegating to a live [`Ctx`], so the recording
/// run is itself a complete, correct simulation.
#[derive(Debug)]
pub struct RecCtx<'a> {
    inner: &'a mut Ctx,
    ops: Vec<SchedOp>,
    unsupported: Option<String>,
}

impl<'a> RecCtx<'a> {
    fn new(inner: &'a mut Ctx) -> Self {
        RecCtx {
            inner,
            ops: Vec::new(),
            unsupported: None,
        }
    }

    fn mark_unsupported(&mut self, what: &str) {
        if self.unsupported.is_none() {
            self.unsupported = Some(what.to_owned());
        }
    }

    fn finish(self) -> (Vec<SchedOp>, Option<String>) {
        (self.ops, self.unsupported)
    }
}

impl Comm for RecCtx<'_> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn isend(&mut self, dst: usize, tag: Tag, payload: Bytes) -> SendRequest {
        let req = self.inner.isend(dst, tag, payload.clone());
        self.ops.push(SchedOp::Isend {
            req: req.id,
            dst,
            tag,
            payload,
        });
        req
    }

    fn irecv(&mut self, src: impl Into<Peer>, tag: impl Into<TagSel>) -> RecvRequest {
        let src = src.into();
        let tag = tag.into();
        if matches!(src, Peer::Any) {
            self.mark_unsupported("a receive-source wildcard (Peer::Any)");
        }
        if matches!(tag, TagSel::Any) {
            self.mark_unsupported("a receive-tag wildcard (TagSel::Any)");
        }
        let req = self.inner.irecv(src, tag);
        self.ops.push(SchedOp::Irecv {
            req: req.id,
            src,
            tag,
        });
        req
    }

    fn wait_send(&mut self, req: SendRequest) {
        self.ops.push(SchedOp::Wait {
            reqs: vec![req.id],
            mode: WaitMode::All,
        });
        self.inner.wait_send(req);
    }

    fn wait_recv(&mut self, req: RecvRequest) -> (Bytes, RecvStatus) {
        self.ops.push(SchedOp::Wait {
            reqs: vec![req.id],
            mode: WaitMode::All,
        });
        self.inner.wait_recv(req)
    }

    fn wait_all_sends(&mut self, reqs: Vec<SendRequest>) {
        // An empty waitall is a no-op in `Ctx` (no engine round-trip),
        // so it must record nothing.
        if reqs.is_empty() {
            return;
        }
        self.ops.push(SchedOp::Wait {
            reqs: reqs.iter().map(|r| r.id).collect(),
            mode: WaitMode::All,
        });
        self.inner.wait_all_sends(reqs);
    }

    fn wait_all_recvs(&mut self, reqs: Vec<RecvRequest>) -> Vec<(Bytes, RecvStatus)> {
        if reqs.is_empty() {
            return Vec::new();
        }
        self.ops.push(SchedOp::Wait {
            reqs: reqs.iter().map(|r| r.id).collect(),
            mode: WaitMode::All,
        });
        self.inner.wait_all_recvs(reqs)
    }

    fn wait_any_recv(
        &mut self,
        reqs: Vec<RecvRequest>,
    ) -> (usize, Bytes, RecvStatus, Vec<RecvRequest>) {
        // Which request wins depends on timing, so subsequent ops could
        // diverge between recording and replay.
        self.mark_unsupported("wait_any_recv");
        self.ops.push(SchedOp::Wait {
            reqs: reqs.iter().map(|r| r.id).collect(),
            mode: WaitMode::Any,
        });
        self.inner.wait_any_recv(reqs)
    }

    fn barrier(&mut self) {
        self.ops.push(SchedOp::Barrier);
        self.inner.barrier();
    }

    fn wtime(&mut self) -> SimTime {
        self.ops.push(SchedOp::Wtime);
        self.inner.wtime()
    }

    fn compute(&mut self, span: SimSpan) {
        self.ops.push(SchedOp::Compute { span });
        self.inner.compute(span);
    }
}

/// Compiles an SPMD program into a [`Schedule`] by running it once on
/// the threaded backend with a recording context.
///
/// The recording run uses seed 0 and no watchdog; since a valid
/// program's operation stream is timing-independent (see the
/// [module docs](self)), the seed does not matter, and replays under
/// any seed, fault plan or deadline then happen without rank threads.
///
/// # Errors
///
/// [`RecordError::Unsupported`] if the program used receive wildcards
/// or `wait_any_recv`; [`RecordError::Sim`] if the recording run
/// itself failed (panic, deadlock).
///
/// # Panics
///
/// Panics if `ranks` is zero or exceeds the cluster's process slots.
pub fn record_schedule<F>(
    cluster: &ClusterModel,
    ranks: usize,
    f: F,
) -> Result<Schedule, RecordError>
where
    F: Fn(&mut RecCtx<'_>) + Sync,
{
    let out = simulate(cluster, ranks, 0, |ctx| {
        let mut rc = RecCtx::new(ctx);
        f(&mut rc);
        rc.finish()
    })
    .map_err(RecordError::Sim)?;
    let mut ops = Vec::with_capacity(ranks);
    for (rank, (rank_ops, unsupported)) in out.results.into_iter().enumerate() {
        if let Some(what) = unsupported {
            return Err(RecordError::Unsupported { rank, what });
        }
        ops.push(rank_ops);
    }
    Ok(Schedule { ops })
}
