//! The event-driven execution backend: replay a [`Schedule`] with no
//! OS threads in the loop.
//!
//! The threaded backend parks one OS thread per rank and hands every
//! operation through mpsc channels; on a tuning campaign issuing tens
//! of thousands of short runs, most wall-clock goes to context
//! switches, not discrete-event work. [`simulate_scheduled`] replaces
//! the rank threads with inline cursors over a recorded [`Schedule`]:
//! the engine pulls each rank's next operations synchronously from the
//! [`ReplayTransport`] and "wakes" a rank by pushing its cursor back
//! onto a run queue.
//!
//! # Equivalence
//!
//! The engine core (event heap, `ReqTable`, fabric, watchdog, fault
//! plans) is byte-for-byte the same code for both backends — only the
//! [`Transport`] differs. Because the engine merges per-rank pending
//! queues by (local time, rank, program order) before applying them,
//! cross-rank arrival interleaving never influences results, so the
//! replay produces **bit-identical** reports (virtual times, transfer
//! traces, fabric stats, and error variants) to the threaded run of
//! the same program. `tests/backend_equivalence.rs` enforces this.

use crate::engine::{Engine, Transport};
use crate::error::SimError;
use crate::proto::{BlockOp, Completion, PostOp, RankMsg};
use crate::schedule::{SchedOp, Schedule};
use crate::sim::{build_fabric, check_ranks, report_from_engine, stash_scratch, take_scratch};
use crate::sim::{RunReport, SimOptions};
use collsel_netsim::{ClusterModel, SimTime};
use std::collections::VecDeque;

/// Which execution backend runs a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// One OS thread per rank (the general-purpose oracle; supports
    /// arbitrary rank closures, wildcards and `wait_any_recv`).
    Threads,
    /// Record the program once, then replay the schedule inline with
    /// zero threads per run.
    Events,
    /// Record once, compile the schedule to a static timing DAG
    /// ([`crate::TimingDag`]), then evaluate payload-free with zero
    /// allocation per repetition (the campaign hot path and default).
    #[default]
    Dag,
}

impl Backend {
    /// Stable lowercase name (CLI values and JSON metadata).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Threads => "threads",
            Backend::Events => "events",
            Backend::Dag => "dag",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threads" => Ok(Backend::Threads),
            "events" => Ok(Backend::Events),
            "dag" => Ok(Backend::Dag),
            other => Err(format!(
                "unknown backend '{other}' (expected 'threads', 'events' or 'dag')"
            )),
        }
    }
}

/// Result of replaying a schedule: the run report plus every clock
/// value the program observed.
///
/// The replay discards rank return values (there are no rank closures
/// to return anything), so `wtime` observations — which measurement
/// code derives its samples from — are collected here instead:
/// `wtimes[r]` lists rank `r`'s `Wtime` results in program order,
/// exactly what the threaded run's closure would have seen.
#[derive(Debug, Clone)]
pub struct ScheduledRun {
    /// Aggregate statistics, identical to the threaded backend's.
    pub report: RunReport,
    /// Per-rank `wtime` observations in program order.
    pub wtimes: Vec<Vec<SimTime>>,
}

/// The thread-free transport: per-rank cursors over a [`Schedule`].
pub(crate) struct ReplayTransport<'a> {
    sched: &'a Schedule,
    /// Next op index per rank.
    cursor: Vec<usize>,
    /// Ranks currently able to emit operations, in wake order.
    runnable: VecDeque<usize>,
    /// Collected `Wtime` results per rank.
    wtimes: Vec<Vec<SimTime>>,
}

impl<'a> ReplayTransport<'a> {
    fn new(sched: &'a Schedule) -> Self {
        let p = sched.ranks();
        ReplayTransport {
            sched,
            cursor: vec![0; p],
            runnable: (0..p).collect(),
            wtimes: vec![Vec::new(); p],
        }
    }
}

impl Transport for ReplayTransport<'_> {
    fn next_msg(&mut self) -> Option<RankMsg> {
        let &rank = self.runnable.front()?;
        let ops = &self.sched.ops[rank];
        let Some(op) = ops.get(self.cursor[rank]) else {
            self.runnable.pop_front();
            return Some(RankMsg::Finished { rank });
        };
        self.cursor[rank] += 1;
        let msg = match op {
            SchedOp::Isend {
                req,
                dst,
                tag,
                payload,
            } => RankMsg::Post {
                rank,
                op: PostOp::Isend {
                    req: *req,
                    dst: *dst,
                    tag: *tag,
                    payload: payload.clone(),
                },
            },
            SchedOp::Irecv { req, src, tag } => RankMsg::Post {
                rank,
                op: PostOp::Irecv {
                    req: *req,
                    src: *src,
                    tag: *tag,
                },
            },
            SchedOp::Compute { span } => RankMsg::Post {
                rank,
                op: PostOp::Compute { span: *span },
            },
            SchedOp::Wait { reqs, mode } => {
                self.runnable.pop_front();
                RankMsg::Block {
                    rank,
                    op: BlockOp::Wait {
                        reqs: reqs.clone(),
                        mode: *mode,
                    },
                }
            }
            SchedOp::Barrier => {
                self.runnable.pop_front();
                RankMsg::Block {
                    rank,
                    op: BlockOp::Barrier,
                }
            }
            SchedOp::Wtime => {
                self.runnable.pop_front();
                RankMsg::Block {
                    rank,
                    op: BlockOp::Wtime,
                }
            }
        };
        Some(msg)
    }

    fn deliver(&mut self, rank: usize, now: SimTime, _completions: Vec<Completion>) {
        // The op the rank was blocked on is the one just behind its
        // cursor; a `Wtime` resume is the observation the threaded
        // rank's closure would have read.
        if matches!(self.sched.ops[rank][self.cursor[rank] - 1], SchedOp::Wtime) {
            self.wtimes[rank].push(now);
        }
        self.runnable.push_back(rank);
    }

    fn abort(&mut self) {
        // No threads to tear down: dropping the transport is enough.
        self.runnable.clear();
    }
}

/// Replays a recorded [`Schedule`] under `seed` and `opts`, with zero
/// OS threads, locks or condvars in the loop.
///
/// Produces reports bit-identical to running the recorded program on
/// the threaded backend with the same cluster, seed and options —
/// including `SimError` variants under fault plans and watchdog
/// deadlines.
///
/// # Errors
///
/// Same as [`crate::simulate_with`].
///
/// # Panics
///
/// Panics if the schedule's rank count exceeds the cluster's process
/// slots.
pub fn simulate_scheduled(
    cluster: &ClusterModel,
    sched: &Schedule,
    seed: u64,
    opts: SimOptions,
) -> Result<ScheduledRun, SimError> {
    let ranks = sched.ranks();
    check_ranks(cluster, ranks);
    let fabric = build_fabric(cluster, seed, opts);
    let deadline = opts.deadline.map(|d| SimTime::ZERO + d);
    let transport = ReplayTransport::new(sched);
    let engine = Engine::new(fabric, ranks, transport, deadline, take_scratch());
    let (result, scratch, transport) = engine.run();
    stash_scratch(scratch);
    let report = result?;
    Ok(ScheduledRun {
        report: report_from_engine(report),
        wtimes: transport.wtimes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use crate::schedule::{record_schedule, RecordError};
    use crate::sim::simulate_with;
    use collsel_support::Bytes;

    /// A timed ring exchange exercising sends, receives, barrier and
    /// wtime — written once against `Comm`, run on both backends.
    fn timed_ring<C: Comm>(ctx: &mut C) -> (SimTime, SimTime) {
        let p = ctx.size();
        let next = (ctx.rank() + 1) % p;
        let prev = (ctx.rank() + p - 1) % p;
        ctx.barrier();
        let t0 = ctx.wtime();
        ctx.send(next, 0, Bytes::from(vec![ctx.rank() as u8; 4096]));
        let _ = ctx.recv(prev, 0);
        ctx.barrier();
        (t0, ctx.wtime())
    }

    #[test]
    fn replay_matches_threaded_bit_for_bit() {
        let cluster = ClusterModel::grisou();
        let sched = record_schedule(&cluster, 6, |rc| {
            timed_ring(rc);
        })
        .expect("ring records cleanly");
        for seed in [0u64, 1, 42, 0xDEAD] {
            let opts = SimOptions {
                traced: true,
                deadline: None,
            };
            let threaded = simulate_with(&cluster, 6, seed, opts, timed_ring).expect("threaded");
            let replay = simulate_scheduled(&cluster, &sched, seed, opts).expect("replay");
            assert_eq!(threaded.report.finish_times, replay.report.finish_times);
            assert_eq!(threaded.report.makespan, replay.report.makespan);
            assert_eq!(threaded.report.messages, replay.report.messages);
            assert_eq!(threaded.report.bytes, replay.report.bytes);
            assert_eq!(threaded.report.shm_messages, replay.report.shm_messages);
            assert_eq!(threaded.report.trace, replay.report.trace);
            // The wtime observations are the threaded closure's values.
            for (rank, &(t0, t1)) in threaded.results.iter().enumerate() {
                assert_eq!(replay.wtimes[rank], vec![t0, t1]);
            }
        }
    }

    #[test]
    fn replay_reuses_one_schedule_across_seeds_deterministically() {
        let cluster = ClusterModel::gros();
        let sched = record_schedule(&cluster, 4, |rc| {
            timed_ring(rc);
        })
        .expect("records");
        let a = simulate_scheduled(&cluster, &sched, 7, SimOptions::default()).expect("run a");
        let b = simulate_scheduled(&cluster, &sched, 7, SimOptions::default()).expect("run b");
        assert_eq!(a.report.finish_times, b.report.finish_times);
        assert_eq!(a.wtimes, b.wtimes);
    }

    #[test]
    fn wildcards_are_rejected_at_recording_time() {
        let cluster = ClusterModel::gros();
        let err = record_schedule(&cluster, 2, |rc| {
            if rc.rank() == 0 {
                rc.send(1, 0, Bytes::from_static(b"x"));
            } else {
                let _ = rc.recv(crate::Peer::Any, 0);
            }
        })
        .expect_err("wildcard source cannot be replayed");
        match err {
            RecordError::Unsupported { rank, what } => {
                assert_eq!(rank, 1);
                assert!(what.contains("Peer::Any"), "got: {what}");
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn backend_parses_and_displays() {
        use std::str::FromStr;
        assert_eq!(Backend::from_str("events"), Ok(Backend::Events));
        assert_eq!(Backend::from_str("threads"), Ok(Backend::Threads));
        assert_eq!(Backend::from_str("dag"), Ok(Backend::Dag));
        assert!(Backend::from_str("fibers").is_err());
        assert_eq!(Backend::default(), Backend::Dag);
        assert_eq!(Backend::Events.to_string(), "events");
        assert_eq!(Backend::Dag.to_string(), "dag");
    }
}
