//! The [`Comm`] trait: the communication surface collective algorithms
//! are written against, abstracted over *how* the operations execute.
//!
//! Two implementors exist:
//!
//! * [`Ctx`] — the real per-rank handle of the threaded backend; every
//!   call talks to the engine.
//! * [`crate::RecCtx`] — a recording wrapper that logs each operation
//!   into a [`crate::Schedule`] while delegating to an inner `Ctx`, so
//!   the schedule IR is *derived from the implementing code* rather
//!   than hand-written.
//!
//! The provided methods (`send`, `recv`, `sendrecv`) use exactly the
//! decomposition of the corresponding inherent `Ctx` methods, so a
//! program run generically through `Comm` issues the identical
//! operation stream as one run against `Ctx` directly — the foundation
//! of the backends' bit-identical equivalence.

use crate::ctx::{Ctx, RecvRequest, SendRequest};
use crate::msg::{Peer, RecvStatus, Tag, TagSel};
use collsel_netsim::{SimSpan, SimTime};
use collsel_support::Bytes;

/// Communication operations available to a rank of an SPMD program.
///
/// See the [module docs](self) for the equivalence contract between
/// implementors. The trait is not object-safe (receive sources and tags
/// are generic, mirroring [`Ctx::irecv`]); use it as a generic bound.
pub trait Comm {
    /// This process's rank in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of processes in the simulation (world size).
    fn size(&self) -> usize;

    /// Starts a non-blocking send (`MPI_Isend`).
    fn isend(&mut self, dst: usize, tag: Tag, payload: Bytes) -> SendRequest;

    /// Starts a non-blocking receive (`MPI_Irecv`).
    fn irecv(&mut self, src: impl Into<Peer>, tag: impl Into<TagSel>) -> RecvRequest;

    /// Completes a non-blocking send (`MPI_Wait`).
    fn wait_send(&mut self, req: SendRequest);

    /// Completes a non-blocking receive (`MPI_Wait`).
    fn wait_recv(&mut self, req: RecvRequest) -> (Bytes, RecvStatus);

    /// Completes a batch of sends (`MPI_Waitall`).
    fn wait_all_sends(&mut self, reqs: Vec<SendRequest>);

    /// Completes a batch of receives (`MPI_Waitall`), payloads in
    /// request order.
    fn wait_all_recvs(&mut self, reqs: Vec<RecvRequest>) -> Vec<(Bytes, RecvStatus)>;

    /// Completes the earliest-finishing receive (`MPI_Waitany`).
    fn wait_any_recv(
        &mut self,
        reqs: Vec<RecvRequest>,
    ) -> (usize, Bytes, RecvStatus, Vec<RecvRequest>);

    /// Synchronises all ranks (`MPI_Barrier`, the runtime's ideal one).
    fn barrier(&mut self);

    /// Reads this rank's local virtual clock (`MPI_Wtime`).
    fn wtime(&mut self) -> SimTime;

    /// Advances this rank's virtual clock by `span` of local
    /// computation (the `Compute(γ)` op of the schedule IR).
    fn compute(&mut self, span: SimSpan);

    /// Blocking standard-mode send (`MPI_Send`): `isend` + wait.
    fn send(&mut self, dst: usize, tag: Tag, payload: Bytes) {
        let req = self.isend(dst, tag, payload);
        self.wait_send(req);
    }

    /// Blocking receive (`MPI_Recv`).
    fn recv(&mut self, src: impl Into<Peer>, tag: impl Into<TagSel>) -> (Bytes, RecvStatus) {
        let req = self.irecv(src, tag);
        self.wait_recv(req)
    }

    /// Combined blocking send and receive (`MPI_Sendrecv`): both
    /// directions progress concurrently.
    fn sendrecv(
        &mut self,
        dst: usize,
        send_tag: Tag,
        payload: Bytes,
        src: impl Into<Peer>,
        recv_tag: impl Into<TagSel>,
    ) -> (Bytes, RecvStatus) {
        let r = self.irecv(src, recv_tag);
        let s = self.isend(dst, send_tag, payload);
        self.wait_send(s);
        self.wait_recv(r)
    }
}

impl Comm for Ctx {
    fn rank(&self) -> usize {
        Ctx::rank(self)
    }

    fn size(&self) -> usize {
        Ctx::size(self)
    }

    fn isend(&mut self, dst: usize, tag: Tag, payload: Bytes) -> SendRequest {
        Ctx::isend(self, dst, tag, payload)
    }

    fn irecv(&mut self, src: impl Into<Peer>, tag: impl Into<TagSel>) -> RecvRequest {
        Ctx::irecv(self, src, tag)
    }

    fn wait_send(&mut self, req: SendRequest) {
        Ctx::wait_send(self, req);
    }

    fn wait_recv(&mut self, req: RecvRequest) -> (Bytes, RecvStatus) {
        Ctx::wait_recv(self, req)
    }

    fn wait_all_sends(&mut self, reqs: Vec<SendRequest>) {
        Ctx::wait_all_sends(self, reqs);
    }

    fn wait_all_recvs(&mut self, reqs: Vec<RecvRequest>) -> Vec<(Bytes, RecvStatus)> {
        Ctx::wait_all_recvs(self, reqs)
    }

    fn wait_any_recv(
        &mut self,
        reqs: Vec<RecvRequest>,
    ) -> (usize, Bytes, RecvStatus, Vec<RecvRequest>) {
        Ctx::wait_any_recv(self, reqs)
    }

    fn barrier(&mut self) {
        Ctx::barrier(self);
    }

    fn wtime(&mut self) -> SimTime {
        Ctx::wtime(self)
    }

    fn compute(&mut self, span: SimSpan) {
        Ctx::compute(self, span);
    }

    fn send(&mut self, dst: usize, tag: Tag, payload: Bytes) {
        Ctx::send(self, dst, tag, payload);
    }

    fn recv(&mut self, src: impl Into<Peer>, tag: impl Into<TagSel>) -> (Bytes, RecvStatus) {
        Ctx::recv(self, src, tag)
    }

    fn sendrecv(
        &mut self,
        dst: usize,
        send_tag: Tag,
        payload: Bytes,
        src: impl Into<Peer>,
        recv_tag: impl Into<TagSel>,
    ) -> (Bytes, RecvStatus) {
        Ctx::sendrecv(self, dst, send_tag, payload, src, recv_tag)
    }
}
