//! # collsel-mpi
//!
//! A deterministic, thread-per-rank **MPI-like runtime** over the
//! [`collsel-netsim`](collsel_netsim) cluster substrate.
//!
//! This crate lets collective algorithms be written exactly the way the
//! Open MPI C implementations are written — imperative loops of
//! `isend`/`irecv`/`wait` — while a central engine advances a virtual
//! clock and books network resources on the simulated fabric. That
//! fidelity matters for the paper being reproduced: its core idea is to
//! derive analytical models *from the implementation code*, so the
//! implementation code must exist in runnable form.
//!
//! Entry point: [`simulate`]. Per-rank API: [`Ctx`].
//!
//! Three execution backends share the engine's semantics (see
//! [`Backend`]): thread-per-rank (`simulate`/`simulate_pooled`, the
//! general-purpose oracle), the event-driven replay path
//! ([`record_schedule`] + [`simulate_scheduled`]), which compiles a
//! program written against the [`Comm`] trait into a [`Schedule`] once
//! and then replays it with zero OS threads per run, and the timing-DAG
//! tier ([`TimingDag`] + [`simulate_dag`]/[`DagEvaluator`]), which
//! additionally resolves send/recv matching at compile time and
//! replays with zero allocation and zero payload traffic — the
//! campaign hot path and the default backend.
//!
//! ```
//! use collsel_support::Bytes;
//! use collsel_netsim::ClusterModel;
//!
//! // Ping-pong between two ranks, measured on rank 0's virtual clock.
//! let cluster = ClusterModel::grisou();
//! let out = collsel_mpi::simulate(&cluster, 2, 1, |ctx| {
//!     let t0 = ctx.wtime();
//!     if ctx.rank() == 0 {
//!         ctx.send(1, 0, Bytes::from(vec![0u8; 1024]));
//!         let _ = ctx.recv(1, 1);
//!     } else {
//!         let (data, _) = ctx.recv(0, 0);
//!         ctx.send(0, 1, data);
//!     }
//!     ctx.wtime() - t0
//! })
//! .unwrap();
//! assert!(out.results[0].as_nanos() > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod comm;
mod ctx;
mod engine;
mod engine_dag;
mod engine_ev;
mod error;
mod group;
mod msg;
mod proto;
mod schedule;
mod sim;
mod team;

pub use comm::Comm;
pub use ctx::{Ctx, RecvRequest, SendRequest};
pub use engine_dag::{simulate_dag, CompileError, DagEvaluator, TimingDag};
pub use engine_ev::{simulate_scheduled, Backend, ScheduledRun};
pub use error::SimError;
pub use group::{GroupComm, GROUP_TAG_STRIDE};
pub use msg::{Peer, RecvStatus, Tag, TagSel};
pub use schedule::{record_schedule, RecCtx, RecordError, Schedule};
pub use sim::{simulate, simulate_traced, simulate_with, RunReport, SimOptions, SimOutcome};
pub use team::simulate_pooled;
