//! The central scheduler of the simulated MPI runtime.
//!
//! One engine instance drives one simulation run. Rank threads execute
//! real user code; every communication call becomes a message to the
//! engine, which owns all simulation state: per-rank virtual clocks,
//! request tables, match queues and the network [`Fabric`].
//!
//! # Scheduling discipline
//!
//! The engine is **conservative**: it only lets virtual time move forward.
//! The loop alternates three phases:
//!
//! 1. *Drain* — wait until every rank thread is parked in a blocking call
//!    (or finished). Per-rank message order equals program order, so by
//!    the time a rank's `Block` arrives, all its earlier posts are queued.
//! 2. *Apply* — apply the queued operations of all ranks merged in
//!    ascending local-time order (ties broken by rank, then program
//!    order), charging CPU overheads and booking NIC time on the fabric.
//! 3. *Resume* — among blocked ranks whose wait condition is satisfied,
//!    wake exactly the ones with the minimal resume time (all ties).
//!    Every operation a woken rank subsequently issues carries a local
//!    time ≥ that minimum, so no later operation can affect an earlier
//!    instant: causality holds without rollback.
//!
//! If no rank is resumable while some are still blocked, the program has
//! deadlocked and the engine reports which rank waits on what.
//!
//! # Protocol modelling
//!
//! Sends at or below the cluster's eager threshold are *eager*: the
//! transfer is booked immediately and the payload waits at the receiver
//! if no receive is posted. Larger sends use a *rendezvous*: the payload
//! leaves the sender only after an RTS/CTS handshake with the matching
//! receive, adding two control-message latencies. Receive completion
//! additionally charges the receiver's CPU overhead.
//!
//! # Hot-path layout
//!
//! Tuning campaigns run tens of thousands of short simulations, so the
//! per-run cost of this file matters. Request state lives in an
//! index-keyed [`ReqTable`] slab (request ids are allocated
//! monotonically per rank, so a ring of slots with a sliding base
//! replaces hashing), and all per-rank vectors plus the scheduling heap
//! are recycled across runs through [`EngineScratch`] instead of being
//! reallocated per `simulate()` call.

use crate::error::SimError;
use crate::msg::{Peer, Tag, TagSel};
use crate::proto::{BlockOp, Completion, PostOp, RankMsg, ReqId, Resume, WaitMode};
use collsel_netsim::{Fabric, FabricStats, SimTime};
use collsel_support::Bytes;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::mpsc::{Receiver, Sender};

/// How the engine exchanges messages with its ranks.
///
/// The scheduling logic above is identical for both execution backends;
/// only the delivery mechanism differs:
///
/// * [`ChannelTransport`] — ranks are OS threads; messages arrive over
///   an mpsc channel and resumes are sent back over per-rank channels.
/// * [`crate::engine_ev`]'s replay transport — ranks are inline cursors
///   over a recorded [`crate::Schedule`]; "delivery" advances the
///   cursor synchronously and queues the ops it emits. No threads, no
///   locks, no condvars.
///
/// Because `apply_pending` merges per-rank queues by (local time, rank,
/// program order), the cross-rank arrival interleaving that the
/// threaded transport exhibits never influences results — which is why
/// the two transports are bit-identical by construction.
pub(crate) trait Transport {
    /// Blocking-receives the next rank message; `None` means every
    /// message source is gone (threaded mode: all rank threads died).
    fn next_msg(&mut self) -> Option<RankMsg>;
    /// Delivers a resume to `rank`, whose blocking op finished at `now`.
    fn deliver(&mut self, rank: usize, now: SimTime, completions: Vec<Completion>);
    /// Tears the ranks down after a fatal error.
    fn abort(&mut self);
}

/// The thread-backed transport used by [`crate::simulate`] and
/// [`crate::simulate_pooled`].
pub(crate) struct ChannelTransport {
    pub(crate) from_ranks: Receiver<RankMsg>,
    pub(crate) resume_tx: Vec<Sender<Resume>>,
}

impl Transport for ChannelTransport {
    fn next_msg(&mut self) -> Option<RankMsg> {
        self.from_ranks.recv().ok()
    }

    fn deliver(&mut self, rank: usize, now: SimTime, completions: Vec<Completion>) {
        // A send failure means the rank thread died; the subsequent
        // drain will surface its panic message.
        let _ = self.resume_tx[rank].send(Resume::Ready { now, completions });
    }

    fn abort(&mut self) {
        for tx in &self.resume_tx {
            let _ = tx.send(Resume::Abort);
        }
    }
}

/// Where a rank currently stands, from the engine's point of view.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum Status {
    Running,
    Blocked,
    Done,
}

/// Engine-side state of one request.
#[derive(Debug)]
struct ReqState {
    complete_at: Option<SimTime>,
    payload: Option<Bytes>,
    origin: Option<(usize, Tag)>,
}

impl ReqState {
    fn pending() -> Self {
        ReqState {
            complete_at: None,
            payload: None,
            origin: None,
        }
    }
}

/// Per-rank request table: a slab keyed by request index.
///
/// [`ReqId`]s are allocated monotonically per rank, and requests are
/// short-lived (posted, completed, waited, removed), so the live ids of
/// a rank always form a narrow window. The table stores that window as
/// a deque of slots starting at `base`; [`remove`](ReqTable::remove)
/// reclaims the contiguous vacant prefix, sliding the window forward so
/// long campaigns reuse a handful of slots instead of growing a hash
/// table — and lookups are a bounds check plus an index instead of a
/// hash.
#[derive(Debug, Default)]
struct ReqTable {
    /// Id of the request stored in `slots[0]`.
    base: ReqId,
    /// `slots[i]` holds the state of request `base + i` (None = vacant:
    /// either removed out of order or never inserted).
    slots: VecDeque<Option<ReqState>>,
}

impl ReqTable {
    fn clear(&mut self) {
        self.base = 0;
        self.slots.clear();
    }

    fn insert(&mut self, req: ReqId, state: ReqState) {
        debug_assert!(req >= self.base, "request ids are monotone per rank");
        let idx = (req - self.base) as usize;
        while self.slots.len() <= idx {
            self.slots.push_back(None);
        }
        debug_assert!(self.slots[idx].is_none(), "request id {req} reused");
        self.slots[idx] = Some(state);
    }

    fn get(&self, req: ReqId) -> Option<&ReqState> {
        let idx = req.checked_sub(self.base)? as usize;
        self.slots.get(idx)?.as_ref()
    }

    fn get_mut(&mut self, req: ReqId) -> Option<&mut ReqState> {
        let idx = req.checked_sub(self.base)? as usize;
        self.slots.get_mut(idx)?.as_mut()
    }

    fn remove(&mut self, req: ReqId) -> Option<ReqState> {
        let idx = req.checked_sub(self.base)? as usize;
        let state = self.slots.get_mut(idx)?.take();
        // Slide the window past the vacant prefix so the slab stays as
        // small as the set of live requests.
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base += 1;
        }
        state
    }

    #[cfg(test)]
    fn live_slots(&self) -> usize {
        self.slots.len()
    }
}

/// Recyclable per-run buffers of the engine.
///
/// One simulation allocates ~10 vectors sized by the rank count plus a
/// scheduling heap; a tuning campaign runs tens of thousands of
/// simulations. The caller (see `crate::sim`) keeps one scratch per OS
/// thread and threads it through consecutive runs, so those allocations
/// happen once per campaign instead of once per run. Recycling is
/// invisible to results: [`reset`](EngineScratch::reset) restores the
/// exact state a fresh allocation would have.
#[derive(Debug, Default)]
pub(crate) struct EngineScratch {
    local: Vec<SimTime>,
    status: Vec<Status>,
    blocked_op: Vec<Option<BlockOp>>,
    reqs: Vec<ReqTable>,
    posted_recvs: Vec<VecDeque<PostedRecv>>,
    unexpected: Vec<VecDeque<UnexpectedSend>>,
    pending: Vec<VecDeque<RankMsg>>,
    finish_times: Vec<SimTime>,
    heap: BinaryHeap<Reverse<(SimTime, usize)>>,
}

/// Rank capacity kept alive in recycled scratch (and rank teams): a
/// one-off oversized run (say P=512) must not pin its buffers for the
/// rest of a campaign that otherwise runs at P≤128.
pub(crate) const RECYCLE_RANK_CAP: usize = 256;

impl EngineScratch {
    /// Drops capacity beyond `cap` ranks (and oversized per-rank
    /// queues) so a stashed scratch never pins an outlier run's
    /// buffers. A no-op for runs at or below the cap.
    pub(crate) fn shrink_to_ranks(&mut self, cap: usize) {
        self.local.truncate(cap);
        self.local.shrink_to(cap);
        self.status.truncate(cap);
        self.status.shrink_to(cap);
        self.blocked_op.truncate(cap);
        self.blocked_op.shrink_to(cap);
        self.finish_times.truncate(cap);
        self.finish_times.shrink_to(cap);
        self.reqs.truncate(cap);
        self.reqs.shrink_to(cap);
        for t in &mut self.reqs {
            t.slots.shrink_to(cap);
        }
        self.posted_recvs.truncate(cap);
        self.posted_recvs.shrink_to(cap);
        for q in &mut self.posted_recvs {
            q.shrink_to(cap);
        }
        self.unexpected.truncate(cap);
        self.unexpected.shrink_to(cap);
        for q in &mut self.unexpected {
            q.shrink_to(cap);
        }
        self.pending.truncate(cap);
        self.pending.shrink_to(cap);
        for q in &mut self.pending {
            q.shrink_to(cap);
        }
        self.heap.shrink_to(cap);
    }

    /// Total rank capacity currently held (the largest per-rank vector).
    #[cfg(test)]
    pub(crate) fn rank_capacity(&self) -> usize {
        self.local
            .capacity()
            .max(self.status.capacity())
            .max(self.reqs.capacity())
            .max(self.pending.capacity())
    }

    fn reset(&mut self, p: usize) {
        self.local.clear();
        self.local.resize(p, SimTime::ZERO);
        self.status.clear();
        self.status.resize(p, Status::Running);
        self.blocked_op.clear();
        self.blocked_op.resize_with(p, || None);
        self.reqs.truncate(p);
        self.reqs.iter_mut().for_each(ReqTable::clear);
        self.reqs.resize_with(p, ReqTable::default);
        self.posted_recvs.truncate(p);
        self.posted_recvs.iter_mut().for_each(VecDeque::clear);
        self.posted_recvs.resize_with(p, VecDeque::new);
        self.unexpected.truncate(p);
        self.unexpected.iter_mut().for_each(VecDeque::clear);
        self.unexpected.resize_with(p, VecDeque::new);
        self.pending.truncate(p);
        self.pending.iter_mut().for_each(VecDeque::clear);
        self.pending.resize_with(p, VecDeque::new);
        self.finish_times.clear();
        self.finish_times.resize(p, SimTime::ZERO);
        self.heap.clear();
    }
}

/// A posted but unmatched receive.
#[derive(Debug)]
struct PostedRecv {
    req: ReqId,
    src: Peer,
    tag: TagSel,
    posted_at: SimTime,
}

/// How an unmatched incoming send will complete once matched.
#[derive(Debug)]
enum Arrival {
    /// Payload already travelling/buffered; fully delivered at this time.
    Eager { delivered: SimTime },
    /// Rendezvous send waiting for its matching receive.
    Rendezvous { send_req: ReqId, posted_at: SimTime },
}

/// An incoming send with no matching posted receive yet.
#[derive(Debug)]
struct UnexpectedSend {
    src: usize,
    tag: Tag,
    payload: Bytes,
    arrival: Arrival,
}

/// Summary handed back to [`crate::simulate`] when the run completes.
#[derive(Debug, Clone)]
pub(crate) struct EngineReport {
    pub finish_times: Vec<SimTime>,
    pub stats: FabricStats,
    pub trace: Vec<collsel_netsim::TransferRecord>,
}

pub(crate) struct Engine<T: Transport> {
    fabric: Fabric,
    p: usize,
    scratch: EngineScratch,
    running: usize,
    transport: T,
    /// Virtual-time watchdog: if the next possible resume time lies past
    /// this instant, the run is aborted with [`SimError::Timeout`].
    deadline: Option<SimTime>,
}

impl<T: Transport> Engine<T> {
    pub(crate) fn new(
        fabric: Fabric,
        p: usize,
        transport: T,
        deadline: Option<SimTime>,
        mut scratch: EngineScratch,
    ) -> Self {
        scratch.reset(p);
        Engine {
            fabric,
            p,
            scratch,
            running: p,
            transport,
            deadline,
        }
    }

    /// Runs the simulation to completion, returning the outcome, the
    /// scratch buffers for the next run to reuse, and the transport (so
    /// backends that accumulate state inside it can read it back).
    pub(crate) fn run(mut self) -> (Result<EngineReport, SimError>, EngineScratch, T) {
        let result = self.run_inner();
        (result, self.scratch, self.transport)
    }

    fn run_inner(&mut self) -> Result<EngineReport, SimError> {
        loop {
            if let Err(e) = self.drain() {
                self.abort_all();
                return Err(e);
            }
            self.apply_pending();
            if self.scratch.status.iter().all(|s| *s == Status::Done) {
                let stats = self.fabric.stats();
                let trace = self.fabric.take_trace();
                return Ok(EngineReport {
                    finish_times: self.scratch.finish_times.clone(),
                    stats,
                    trace,
                });
            }
            match self.resume_minimal() {
                Ok(0) => {
                    let detail = self.deadlock_detail();
                    self.abort_all();
                    return Err(SimError::Deadlock { detail });
                }
                Ok(_) => {}
                Err(e) => {
                    self.abort_all();
                    return Err(e);
                }
            }
        }
    }

    /// Phase 1: receive rank messages until no rank is running.
    fn drain(&mut self) -> Result<(), SimError> {
        while self.running > 0 {
            let msg = self
                .transport
                .next_msg()
                .ok_or_else(|| SimError::Deadlock {
                    detail: "all rank threads disappeared while still marked running".to_owned(),
                })?;
            match &msg {
                RankMsg::Post { .. } => {}
                RankMsg::Block { .. } | RankMsg::Finished { .. } => self.running -= 1,
                RankMsg::Panicked { rank, message } => {
                    return Err(SimError::RankPanic {
                        rank: *rank,
                        message: message.clone(),
                    });
                }
            }
            let rank = match &msg {
                RankMsg::Post { rank, .. }
                | RankMsg::Block { rank, .. }
                | RankMsg::Finished { rank } => *rank,
                RankMsg::Panicked { .. } => unreachable!(),
            };
            self.scratch.pending[rank].push_back(msg);
        }
        Ok(())
    }

    /// Phase 2: apply queued operations merged in ascending time order.
    fn apply_pending(&mut self) {
        debug_assert!(self.scratch.heap.is_empty());
        for r in 0..self.p {
            if !self.scratch.pending[r].is_empty() {
                self.scratch.heap.push(Reverse((self.scratch.local[r], r)));
            }
        }
        while let Some(Reverse((t, r))) = self.scratch.heap.pop() {
            if t != self.scratch.local[r] {
                // Stale key: the rank's clock advanced since this entry
                // was pushed; re-key it.
                self.scratch.heap.push(Reverse((self.scratch.local[r], r)));
                continue;
            }
            let Some(item) = self.scratch.pending[r].pop_front() else {
                continue;
            };
            self.apply(item);
            if !self.scratch.pending[r].is_empty() {
                self.scratch.heap.push(Reverse((self.scratch.local[r], r)));
            }
        }
    }

    fn apply(&mut self, msg: RankMsg) {
        match msg {
            RankMsg::Post { rank, op } => match op {
                PostOp::Isend {
                    req,
                    dst,
                    tag,
                    payload,
                } => self.apply_isend(rank, req, dst, tag, payload),
                PostOp::Irecv { req, src, tag } => self.apply_irecv(rank, req, src, tag),
                PostOp::Compute { span } => self.scratch.local[rank] += span,
            },
            RankMsg::Block { rank, op } => {
                debug_assert!(
                    self.scratch.pending[rank].is_empty(),
                    "protocol violation: rank {rank} issued operations after blocking"
                );
                self.scratch.status[rank] = Status::Blocked;
                self.scratch.blocked_op[rank] = Some(op);
            }
            RankMsg::Finished { rank } => {
                self.scratch.status[rank] = Status::Done;
                self.scratch.finish_times[rank] = self.scratch.local[rank];
            }
            RankMsg::Panicked { .. } => unreachable!("handled during drain"),
        }
    }

    fn apply_isend(&mut self, src: usize, req: ReqId, dst: usize, tag: Tag, payload: Bytes) {
        // The send call occupies the sending CPU (straggler-aware).
        self.scratch.local[src] += self.fabric.send_overhead(src);
        let ready = self.scratch.local[src];
        let bytes = payload.len();
        self.scratch.reqs[src].insert(req, ReqState::pending());

        if bytes <= self.fabric.cluster().eager_threshold() {
            let plan = self.fabric.plan_transfer(src, dst, bytes, ready);
            self.complete_req(src, req, plan.send_done, None, None);
            if let Some(recv) = self.take_matching_recv(dst, src, tag) {
                let done = plan.delivered.max(recv.posted_at) + self.fabric.recv_overhead(dst);
                self.complete_req(dst, recv.req, done, Some(payload), Some((src, tag)));
            } else {
                self.scratch.unexpected[dst].push_back(UnexpectedSend {
                    src,
                    tag,
                    payload,
                    arrival: Arrival::Eager {
                        delivered: plan.delivered,
                    },
                });
            }
        } else if let Some(recv) = self.take_matching_recv(dst, src, tag) {
            self.rendezvous(src, req, dst, recv.req, tag, payload, ready, recv.posted_at);
        } else {
            self.scratch.unexpected[dst].push_back(UnexpectedSend {
                src,
                tag,
                payload,
                arrival: Arrival::Rendezvous {
                    send_req: req,
                    posted_at: ready,
                },
            });
        }
    }

    fn apply_irecv(&mut self, dst: usize, req: ReqId, src: Peer, tag: TagSel) {
        let posted_at = self.scratch.local[dst];
        self.scratch.reqs[dst].insert(req, ReqState::pending());

        let matched = self.scratch.unexpected[dst]
            .iter()
            .position(|u| src.matches(u.src) && tag.matches(u.tag));
        if let Some(idx) = matched {
            let u = self.scratch.unexpected[dst]
                .remove(idx)
                .expect("index just found");
            match u.arrival {
                Arrival::Eager { delivered } => {
                    let done = delivered.max(posted_at) + self.fabric.recv_overhead(dst);
                    self.complete_req(dst, req, done, Some(u.payload), Some((u.src, u.tag)));
                }
                Arrival::Rendezvous {
                    send_req,
                    posted_at: send_posted,
                } => {
                    self.rendezvous(
                        u.src,
                        send_req,
                        dst,
                        req,
                        u.tag,
                        u.payload,
                        send_posted,
                        posted_at,
                    );
                }
            }
        } else {
            self.scratch.posted_recvs[dst].push_back(PostedRecv {
                req,
                src,
                tag,
                posted_at,
            });
        }
    }

    /// Books the data transfer of a rendezvous send whose receive has now
    /// been matched, completing both requests.
    #[allow(clippy::too_many_arguments)]
    fn rendezvous(
        &mut self,
        src: usize,
        send_req: ReqId,
        dst: usize,
        recv_req: ReqId,
        tag: Tag,
        payload: Bytes,
        send_posted: SimTime,
        recv_posted: SimTime,
    ) {
        let lc = self.fabric.control_latency();
        // RTS reaches the receiver, CTS returns once the receive exists.
        let ready = (send_posted + lc).max(recv_posted) + lc;
        let bytes = payload.len();
        let plan = self.fabric.plan_transfer(src, dst, bytes, ready);
        self.complete_req(src, send_req, plan.send_done, None, None);
        let done = plan.delivered + self.fabric.recv_overhead(dst);
        self.complete_req(dst, recv_req, done, Some(payload), Some((src, tag)));
    }

    /// Removes and returns the oldest posted receive at `dst` matching a
    /// message from `src` with `tag`.
    fn take_matching_recv(&mut self, dst: usize, src: usize, tag: Tag) -> Option<PostedRecv> {
        let idx = self.scratch.posted_recvs[dst]
            .iter()
            .position(|r| r.src.matches(src) && r.tag.matches(tag))?;
        self.scratch.posted_recvs[dst].remove(idx)
    }

    fn complete_req(
        &mut self,
        rank: usize,
        req: ReqId,
        at: SimTime,
        payload: Option<Bytes>,
        origin: Option<(usize, Tag)>,
    ) {
        let state = self.scratch.reqs[rank]
            .get_mut(req)
            .expect("request must exist when completed");
        debug_assert!(state.complete_at.is_none(), "request completed twice");
        state.complete_at = Some(at);
        state.payload = payload;
        state.origin = origin;
    }

    /// Checks the virtual-time watchdog against the next resume time.
    fn check_deadline(&self, next: SimTime) -> Result<(), SimError> {
        match self.deadline {
            Some(d) if next > d => Err(SimError::Timeout {
                deadline: d.saturating_since(SimTime::ZERO),
                detail: format!(
                    "next event at {next} lies past the deadline; {}",
                    self.deadlock_detail()
                ),
            }),
            _ => Ok(()),
        }
    }

    /// Phase 3: wake the blocked ranks with the minimal resume time.
    /// Returns the number of ranks resumed, or [`SimError::Timeout`]
    /// when that minimal resume time lies past the watchdog deadline.
    fn resume_minimal(&mut self) -> Result<usize, SimError> {
        // Barrier: only complete when every non-finished rank is in it.
        // A barrier only completes if every rank of the world can still
        // reach it; a rank that finished without it makes the program
        // erroneous (caught below as a deadlock).
        let mut alive = 0usize;
        let mut all_in_barrier = true;
        let mut barrier_t = SimTime::ZERO;
        for r in 0..self.p {
            if self.scratch.status[r] == Status::Done {
                continue;
            }
            alive += 1;
            if matches!(self.scratch.blocked_op[r], Some(BlockOp::Barrier)) {
                barrier_t = barrier_t.max(self.scratch.local[r]);
            } else {
                all_in_barrier = false;
            }
        }
        if alive == self.p && all_in_barrier {
            self.check_deadline(barrier_t)?;
            for r in 0..self.p {
                self.wake(r, barrier_t, Vec::new());
            }
            return Ok(alive);
        }

        // Everything else: find the minimal resume time over all blocked
        // ranks, then wake exactly the ranks that attain it. Two passes
        // keep this allocation-free; `wait_ready_at` is a cheap pure
        // scan of the rank's live requests.
        let mut best: Option<SimTime> = None;
        for r in 0..self.p {
            if let Some(at) = self.resume_at(r) {
                best = Some(best.map_or(at, |b: SimTime| b.min(at)));
            }
        }
        let Some(best) = best else { return Ok(0) };
        self.check_deadline(best)?;
        let mut woken = 0usize;
        for r in 0..self.p {
            if self.resume_at(r) != Some(best) {
                continue;
            }
            let op = self.scratch.blocked_op[r]
                .take()
                .expect("blocked rank has an op");
            let completions = match op {
                BlockOp::Wtime => Vec::new(),
                BlockOp::Barrier => unreachable!("barrier ranks have no resume time"),
                BlockOp::Wait { reqs, mode } => self.collect_completions(r, &reqs, mode),
            };
            self.wake(r, best, completions);
            woken += 1;
        }
        Ok(woken)
    }

    /// The earliest time at which rank `r` could resume, if it can.
    fn resume_at(&self, r: usize) -> Option<SimTime> {
        if self.scratch.status[r] != Status::Blocked {
            return None;
        }
        match self.scratch.blocked_op[r].as_ref() {
            Some(BlockOp::Wtime) => Some(self.scratch.local[r]),
            Some(BlockOp::Wait { reqs, mode }) => self.wait_ready_at(r, reqs, *mode),
            Some(BlockOp::Barrier) | None => None,
        }
    }

    /// The earliest time at which rank `r`'s wait can finish, if it can.
    fn wait_ready_at(&self, r: usize, reqs: &[ReqId], mode: WaitMode) -> Option<SimTime> {
        let times = reqs
            .iter()
            .map(|&id| self.scratch.reqs[r].get(id).and_then(|s| s.complete_at));
        match mode {
            WaitMode::All => {
                let mut at = self.scratch.local[r];
                for t in times {
                    at = at.max(t?);
                }
                Some(at)
            }
            WaitMode::Any => {
                let earliest = times.flatten().min()?;
                Some(earliest.max(self.scratch.local[r]))
            }
        }
    }

    /// Pops completed requests out of the table for the resume message.
    fn collect_completions(&mut self, r: usize, reqs: &[ReqId], mode: WaitMode) -> Vec<Completion> {
        match mode {
            WaitMode::All => reqs
                .iter()
                .map(|&id| {
                    let state = self.scratch.reqs[r]
                        .remove(id)
                        .expect("waited request exists");
                    Completion {
                        req: id,
                        payload: state.payload,
                        origin: state.origin,
                    }
                })
                .collect(),
            WaitMode::Any => {
                let (&winner, _) = reqs
                    .iter()
                    .filter_map(|id| {
                        self.scratch.reqs[r]
                            .get(*id)
                            .and_then(|s| s.complete_at)
                            .map(|t| (id, t))
                    })
                    .min_by_key(|&(id, t)| (t, *id))
                    .expect("wait-any resumed without a completed request");
                let state = self.scratch.reqs[r].remove(winner).expect("request exists");
                vec![Completion {
                    req: winner,
                    payload: state.payload,
                    origin: state.origin,
                }]
            }
        }
    }

    fn wake(&mut self, rank: usize, now: SimTime, completions: Vec<Completion>) {
        self.scratch.local[rank] = now;
        self.scratch.status[rank] = Status::Running;
        self.scratch.blocked_op[rank] = None;
        self.running += 1;
        self.transport.deliver(rank, now, completions);
    }

    fn abort_all(&mut self) {
        self.transport.abort();
    }

    fn deadlock_detail(&self) -> String {
        let mut parts = Vec::new();
        for r in 0..self.p {
            match self.scratch.status[r] {
                Status::Done => {}
                Status::Running => parts.push(format!("rank {r}: running (internal error)")),
                Status::Blocked => {
                    let what = match self.scratch.blocked_op[r].as_ref() {
                        Some(BlockOp::Barrier) => "barrier".to_owned(),
                        Some(BlockOp::Wtime) => "wtime (internal error)".to_owned(),
                        Some(BlockOp::Wait { reqs, mode }) => {
                            let outstanding: Vec<String> = reqs
                                .iter()
                                .filter(|&&id| {
                                    self.scratch.reqs[r]
                                        .get(id)
                                        .is_none_or(|s| s.complete_at.is_none())
                                })
                                .map(|id| format!("req {id}"))
                                .collect();
                            format!("wait[{mode:?}] on {}", outstanding.join(", "))
                        }
                        None => "unknown".to_owned(),
                    };
                    parts.push(format!(
                        "rank {r}: blocked on {what} at t={}",
                        self.scratch.local[r]
                    ));
                }
            }
        }
        parts.join("; ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_at(t: u64) -> ReqState {
        ReqState {
            complete_at: Some(SimTime::from_nanos(t)),
            payload: None,
            origin: None,
        }
    }

    #[test]
    fn slab_inserts_and_removes_in_order() {
        let mut t = ReqTable::default();
        for id in 0..4u32 {
            t.insert(id, state_at(id as u64));
        }
        for id in 0..4u32 {
            assert_eq!(
                t.get(id).and_then(|s| s.complete_at),
                Some(SimTime::from_nanos(id as u64))
            );
            assert!(t.remove(id).is_some());
            assert!(t.get(id).is_none(), "removed request must read as absent");
        }
        assert_eq!(t.live_slots(), 0, "in-order removal reclaims everything");
    }

    #[test]
    fn slab_reuses_slots_across_the_id_window() {
        // A long campaign allocates monotonically increasing ids; the
        // slab must stay as small as the live window, not the id range.
        let mut t = ReqTable::default();
        for id in 0..10_000u32 {
            t.insert(id, ReqState::pending());
            assert!(t.get(id).is_some());
            assert!(t.remove(id).is_some());
        }
        assert_eq!(t.live_slots(), 0);
        // Fresh inserts after the window slid still work.
        t.insert(10_000, state_at(1));
        assert!(t.get(10_000).is_some());
        assert!(t.get(9_999).is_none(), "old ids stay absent");
    }

    #[test]
    fn slab_tolerates_out_of_order_removal() {
        let mut t = ReqTable::default();
        for id in 0..5u32 {
            t.insert(id, state_at(id as u64));
        }
        // Remove the middle first: the prefix cannot slide yet.
        assert!(t.remove(2).is_some());
        assert!(t.get(2).is_none());
        assert!(t.get(1).is_some() && t.get(3).is_some());
        assert_eq!(t.live_slots(), 5);
        // Removing the front reclaims through the vacant middle.
        assert!(t.remove(0).is_some());
        assert!(t.remove(1).is_some());
        assert_eq!(t.live_slots(), 2, "prefix slid past the vacant slot 2");
        assert!(t.remove(2).is_none(), "double remove reads as absent");
        assert!(t.remove(3).is_some());
        assert!(t.remove(4).is_some());
        assert_eq!(t.live_slots(), 0);
    }

    #[test]
    fn slab_mutation_through_get_mut() {
        let mut t = ReqTable::default();
        t.insert(7, ReqState::pending());
        t.get_mut(7).expect("live").complete_at = Some(SimTime::from_nanos(9));
        assert_eq!(
            t.get(7).and_then(|s| s.complete_at),
            Some(SimTime::from_nanos(9))
        );
        assert!(t.get_mut(6).is_none());
    }

    #[test]
    fn shrink_to_ranks_caps_recycled_capacity() {
        let mut s = EngineScratch::default();
        s.reset(512);
        assert!(s.rank_capacity() >= 512, "oversized run grows the scratch");
        s.shrink_to_ranks(RECYCLE_RANK_CAP);
        assert!(
            s.rank_capacity() <= RECYCLE_RANK_CAP,
            "shrink must cap capacity, found {}",
            s.rank_capacity()
        );
        // The scratch stays fully usable after shrinking.
        s.reset(8);
        assert_eq!(s.local.len(), 8);
        s.reset(300);
        assert_eq!(s.status.len(), 300);
    }

    #[test]
    fn scratch_reset_restores_a_fresh_state() {
        let mut s = EngineScratch::default();
        s.reset(3);
        s.local[1] = SimTime::from_nanos(5);
        s.status[2] = Status::Done;
        s.reqs[0].insert(0, ReqState::pending());
        s.heap.push(Reverse((SimTime::ZERO, 1)));
        // Shrinks and grows alike.
        for p in [2, 5] {
            s.reset(p);
            assert_eq!(s.local, vec![SimTime::ZERO; p]);
            assert_eq!(s.status, vec![Status::Running; p]);
            assert_eq!(s.reqs.len(), p);
            assert!(s.reqs.iter().all(|t| t.base == 0 && t.slots.is_empty()));
            assert!(s.heap.is_empty());
        }
    }
}
