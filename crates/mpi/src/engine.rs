//! The central scheduler of the simulated MPI runtime.
//!
//! One engine instance drives one simulation run. Rank threads execute
//! real user code; every communication call becomes a message to the
//! engine, which owns all simulation state: per-rank virtual clocks,
//! request tables, match queues and the network [`Fabric`].
//!
//! # Scheduling discipline
//!
//! The engine is **conservative**: it only lets virtual time move forward.
//! The loop alternates three phases:
//!
//! 1. *Drain* — wait until every rank thread is parked in a blocking call
//!    (or finished). Per-rank message order equals program order, so by
//!    the time a rank's `Block` arrives, all its earlier posts are queued.
//! 2. *Apply* — apply the queued operations of all ranks merged in
//!    ascending local-time order (ties broken by rank, then program
//!    order), charging CPU overheads and booking NIC time on the fabric.
//! 3. *Resume* — among blocked ranks whose wait condition is satisfied,
//!    wake exactly the ones with the minimal resume time (all ties).
//!    Every operation a woken rank subsequently issues carries a local
//!    time ≥ that minimum, so no later operation can affect an earlier
//!    instant: causality holds without rollback.
//!
//! If no rank is resumable while some are still blocked, the program has
//! deadlocked and the engine reports which rank waits on what.
//!
//! # Protocol modelling
//!
//! Sends at or below the cluster's eager threshold are *eager*: the
//! transfer is booked immediately and the payload waits at the receiver
//! if no receive is posted. Larger sends use a *rendezvous*: the payload
//! leaves the sender only after an RTS/CTS handshake with the matching
//! receive, adding two control-message latencies. Receive completion
//! additionally charges the receiver's CPU overhead.

use crate::error::SimError;
use crate::msg::{Peer, Tag, TagSel};
use crate::proto::{BlockOp, Completion, PostOp, RankMsg, ReqId, Resume, WaitMode};
use collsel_netsim::{Fabric, FabricStats, SimTime};
use collsel_support::Bytes;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::mpsc::{Receiver, Sender};

/// Where a rank currently stands, from the engine's point of view.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum Status {
    Running,
    Blocked,
    Done,
}

/// Engine-side state of one request.
#[derive(Debug)]
struct ReqState {
    complete_at: Option<SimTime>,
    payload: Option<Bytes>,
    origin: Option<(usize, Tag)>,
}

impl ReqState {
    fn pending() -> Self {
        ReqState {
            complete_at: None,
            payload: None,
            origin: None,
        }
    }
}

/// A posted but unmatched receive.
#[derive(Debug)]
struct PostedRecv {
    req: ReqId,
    src: Peer,
    tag: TagSel,
    posted_at: SimTime,
}

/// How an unmatched incoming send will complete once matched.
#[derive(Debug)]
enum Arrival {
    /// Payload already travelling/buffered; fully delivered at this time.
    Eager { delivered: SimTime },
    /// Rendezvous send waiting for its matching receive.
    Rendezvous { send_req: ReqId, posted_at: SimTime },
}

/// An incoming send with no matching posted receive yet.
#[derive(Debug)]
struct UnexpectedSend {
    src: usize,
    tag: Tag,
    payload: Bytes,
    arrival: Arrival,
}

/// Summary handed back to [`crate::simulate`] when the run completes.
#[derive(Debug, Clone)]
pub(crate) struct EngineReport {
    pub finish_times: Vec<SimTime>,
    pub stats: FabricStats,
    pub trace: Vec<collsel_netsim::TransferRecord>,
}

pub(crate) struct Engine {
    fabric: Fabric,
    p: usize,
    local: Vec<SimTime>,
    status: Vec<Status>,
    blocked_op: Vec<Option<BlockOp>>,
    reqs: Vec<HashMap<ReqId, ReqState>>,
    posted_recvs: Vec<VecDeque<PostedRecv>>,
    unexpected: Vec<VecDeque<UnexpectedSend>>,
    pending: Vec<VecDeque<RankMsg>>,
    running: usize,
    from_ranks: Receiver<RankMsg>,
    resume_tx: Vec<Sender<Resume>>,
    finish_times: Vec<SimTime>,
    /// Virtual-time watchdog: if the next possible resume time lies past
    /// this instant, the run is aborted with [`SimError::Timeout`].
    deadline: Option<SimTime>,
}

impl Engine {
    pub(crate) fn new(
        fabric: Fabric,
        p: usize,
        from_ranks: Receiver<RankMsg>,
        resume_tx: Vec<Sender<Resume>>,
        deadline: Option<SimTime>,
    ) -> Self {
        debug_assert_eq!(resume_tx.len(), p);
        Engine {
            fabric,
            p,
            local: vec![SimTime::ZERO; p],
            status: vec![Status::Running; p],
            blocked_op: (0..p).map(|_| None).collect(),
            reqs: (0..p).map(|_| HashMap::new()).collect(),
            posted_recvs: (0..p).map(|_| VecDeque::new()).collect(),
            unexpected: (0..p).map(|_| VecDeque::new()).collect(),
            pending: (0..p).map(|_| VecDeque::new()).collect(),
            running: p,
            from_ranks,
            resume_tx,
            finish_times: vec![SimTime::ZERO; p],
            deadline,
        }
    }

    /// Runs the simulation to completion.
    pub(crate) fn run(mut self) -> Result<EngineReport, SimError> {
        loop {
            if let Err(e) = self.drain() {
                self.abort_all();
                return Err(e);
            }
            self.apply_pending();
            if self.status.iter().all(|s| *s == Status::Done) {
                let stats = self.fabric.stats();
                let trace = self.fabric.take_trace();
                return Ok(EngineReport {
                    finish_times: self.finish_times,
                    stats,
                    trace,
                });
            }
            match self.resume_minimal() {
                Ok(0) => {
                    let detail = self.deadlock_detail();
                    self.abort_all();
                    return Err(SimError::Deadlock { detail });
                }
                Ok(_) => {}
                Err(e) => {
                    self.abort_all();
                    return Err(e);
                }
            }
        }
    }

    /// Phase 1: receive rank messages until no rank is running.
    fn drain(&mut self) -> Result<(), SimError> {
        while self.running > 0 {
            let msg = self.from_ranks.recv().map_err(|_| SimError::Deadlock {
                detail: "all rank threads disappeared while still marked running".to_owned(),
            })?;
            match &msg {
                RankMsg::Post { .. } => {}
                RankMsg::Block { .. } | RankMsg::Finished { .. } => self.running -= 1,
                RankMsg::Panicked { rank, message } => {
                    return Err(SimError::RankPanic {
                        rank: *rank,
                        message: message.clone(),
                    });
                }
            }
            let rank = match &msg {
                RankMsg::Post { rank, .. }
                | RankMsg::Block { rank, .. }
                | RankMsg::Finished { rank } => *rank,
                RankMsg::Panicked { .. } => unreachable!(),
            };
            self.pending[rank].push_back(msg);
        }
        Ok(())
    }

    /// Phase 2: apply queued operations merged in ascending time order.
    fn apply_pending(&mut self) {
        let mut heap: BinaryHeap<Reverse<(SimTime, usize)>> = (0..self.p)
            .filter(|&r| !self.pending[r].is_empty())
            .map(|r| Reverse((self.local[r], r)))
            .collect();
        while let Some(Reverse((t, r))) = heap.pop() {
            if t != self.local[r] {
                // Stale key: the rank's clock advanced since this entry
                // was pushed; re-key it.
                heap.push(Reverse((self.local[r], r)));
                continue;
            }
            let Some(item) = self.pending[r].pop_front() else {
                continue;
            };
            self.apply(item);
            if !self.pending[r].is_empty() {
                heap.push(Reverse((self.local[r], r)));
            }
        }
    }

    fn apply(&mut self, msg: RankMsg) {
        match msg {
            RankMsg::Post { rank, op } => match op {
                PostOp::Isend {
                    req,
                    dst,
                    tag,
                    payload,
                } => self.apply_isend(rank, req, dst, tag, payload),
                PostOp::Irecv { req, src, tag } => self.apply_irecv(rank, req, src, tag),
            },
            RankMsg::Block { rank, op } => {
                debug_assert!(
                    self.pending[rank].is_empty(),
                    "protocol violation: rank {rank} issued operations after blocking"
                );
                self.status[rank] = Status::Blocked;
                self.blocked_op[rank] = Some(op);
            }
            RankMsg::Finished { rank } => {
                self.status[rank] = Status::Done;
                self.finish_times[rank] = self.local[rank];
            }
            RankMsg::Panicked { .. } => unreachable!("handled during drain"),
        }
    }

    fn apply_isend(&mut self, src: usize, req: ReqId, dst: usize, tag: Tag, payload: Bytes) {
        // The send call occupies the sending CPU (straggler-aware).
        self.local[src] += self.fabric.send_overhead(src);
        let ready = self.local[src];
        let bytes = payload.len();
        self.reqs[src].insert(req, ReqState::pending());

        if bytes <= self.fabric.cluster().eager_threshold() {
            let plan = self.fabric.plan_transfer(src, dst, bytes, ready);
            self.complete_req(src, req, plan.send_done, None, None);
            if let Some(recv) = self.take_matching_recv(dst, src, tag) {
                let done = plan.delivered.max(recv.posted_at) + self.fabric.recv_overhead(dst);
                self.complete_req(dst, recv.req, done, Some(payload), Some((src, tag)));
            } else {
                self.unexpected[dst].push_back(UnexpectedSend {
                    src,
                    tag,
                    payload,
                    arrival: Arrival::Eager {
                        delivered: plan.delivered,
                    },
                });
            }
        } else if let Some(recv) = self.take_matching_recv(dst, src, tag) {
            self.rendezvous(src, req, dst, recv.req, tag, payload, ready, recv.posted_at);
        } else {
            self.unexpected[dst].push_back(UnexpectedSend {
                src,
                tag,
                payload,
                arrival: Arrival::Rendezvous {
                    send_req: req,
                    posted_at: ready,
                },
            });
        }
    }

    fn apply_irecv(&mut self, dst: usize, req: ReqId, src: Peer, tag: TagSel) {
        let posted_at = self.local[dst];
        self.reqs[dst].insert(req, ReqState::pending());

        let matched = self.unexpected[dst]
            .iter()
            .position(|u| src.matches(u.src) && tag.matches(u.tag));
        if let Some(idx) = matched {
            let u = self.unexpected[dst].remove(idx).expect("index just found");
            match u.arrival {
                Arrival::Eager { delivered } => {
                    let done = delivered.max(posted_at) + self.fabric.recv_overhead(dst);
                    self.complete_req(dst, req, done, Some(u.payload), Some((u.src, u.tag)));
                }
                Arrival::Rendezvous {
                    send_req,
                    posted_at: send_posted,
                } => {
                    self.rendezvous(
                        u.src,
                        send_req,
                        dst,
                        req,
                        u.tag,
                        u.payload,
                        send_posted,
                        posted_at,
                    );
                }
            }
        } else {
            self.posted_recvs[dst].push_back(PostedRecv {
                req,
                src,
                tag,
                posted_at,
            });
        }
    }

    /// Books the data transfer of a rendezvous send whose receive has now
    /// been matched, completing both requests.
    #[allow(clippy::too_many_arguments)]
    fn rendezvous(
        &mut self,
        src: usize,
        send_req: ReqId,
        dst: usize,
        recv_req: ReqId,
        tag: Tag,
        payload: Bytes,
        send_posted: SimTime,
        recv_posted: SimTime,
    ) {
        let lc = self.fabric.control_latency();
        // RTS reaches the receiver, CTS returns once the receive exists.
        let ready = (send_posted + lc).max(recv_posted) + lc;
        let bytes = payload.len();
        let plan = self.fabric.plan_transfer(src, dst, bytes, ready);
        self.complete_req(src, send_req, plan.send_done, None, None);
        let done = plan.delivered + self.fabric.recv_overhead(dst);
        self.complete_req(dst, recv_req, done, Some(payload), Some((src, tag)));
    }

    /// Removes and returns the oldest posted receive at `dst` matching a
    /// message from `src` with `tag`.
    fn take_matching_recv(&mut self, dst: usize, src: usize, tag: Tag) -> Option<PostedRecv> {
        let idx = self.posted_recvs[dst]
            .iter()
            .position(|r| r.src.matches(src) && r.tag.matches(tag))?;
        self.posted_recvs[dst].remove(idx)
    }

    fn complete_req(
        &mut self,
        rank: usize,
        req: ReqId,
        at: SimTime,
        payload: Option<Bytes>,
        origin: Option<(usize, Tag)>,
    ) {
        let state = self.reqs[rank]
            .get_mut(&req)
            .expect("request must exist when completed");
        debug_assert!(state.complete_at.is_none(), "request completed twice");
        state.complete_at = Some(at);
        state.payload = payload;
        state.origin = origin;
    }

    /// Checks the virtual-time watchdog against the next resume time.
    fn check_deadline(&self, next: SimTime) -> Result<(), SimError> {
        match self.deadline {
            Some(d) if next > d => Err(SimError::Timeout {
                deadline: d.saturating_since(SimTime::ZERO),
                detail: format!(
                    "next event at {next} lies past the deadline; {}",
                    self.deadlock_detail()
                ),
            }),
            _ => Ok(()),
        }
    }

    /// Phase 3: wake the blocked ranks with the minimal resume time.
    /// Returns the number of ranks resumed, or [`SimError::Timeout`]
    /// when that minimal resume time lies past the watchdog deadline.
    fn resume_minimal(&mut self) -> Result<usize, SimError> {
        // Barrier: only complete when every non-finished rank is in it.
        let alive: Vec<usize> = (0..self.p)
            .filter(|&r| self.status[r] != Status::Done)
            .collect();
        // A barrier only completes if every rank of the world can still
        // reach it; a rank that finished without it makes the program
        // erroneous (caught below as a deadlock).
        let all_in_barrier = alive.len() == self.p
            && alive
                .iter()
                .all(|&r| matches!(self.blocked_op[r], Some(BlockOp::Barrier)));
        if all_in_barrier {
            let t = alive
                .iter()
                .map(|&r| self.local[r])
                .fold(SimTime::ZERO, SimTime::max);
            self.check_deadline(t)?;
            for &r in &alive {
                self.wake(r, t, Vec::new());
            }
            return Ok(alive.len());
        }

        // Everything else: find each rank's earliest possible resume time.
        let mut best: Option<SimTime> = None;
        let mut ready: Vec<(usize, SimTime)> = Vec::new();
        for r in 0..self.p {
            if self.status[r] != Status::Blocked {
                continue;
            }
            let at = match self.blocked_op[r].as_ref() {
                Some(BlockOp::Wtime) => Some(self.local[r]),
                Some(BlockOp::Wait { reqs, mode }) => self.wait_ready_at(r, reqs, *mode),
                Some(BlockOp::Barrier) | None => None,
            };
            if let Some(at) = at {
                ready.push((r, at));
                best = Some(best.map_or(at, |b: SimTime| b.min(at)));
            }
        }
        let Some(best) = best else { return Ok(0) };
        self.check_deadline(best)?;
        let winners: Vec<usize> = ready
            .iter()
            .filter(|&&(_, at)| at == best)
            .map(|&(r, _)| r)
            .collect();
        for &r in &winners {
            let op = self.blocked_op[r].take().expect("blocked rank has an op");
            let completions = match op {
                BlockOp::Wtime => Vec::new(),
                BlockOp::Barrier => unreachable!("barrier handled above"),
                BlockOp::Wait { reqs, mode } => self.collect_completions(r, &reqs, mode),
            };
            self.wake(r, best, completions);
        }
        Ok(winners.len())
    }

    /// The earliest time at which rank `r`'s wait can finish, if it can.
    fn wait_ready_at(&self, r: usize, reqs: &[ReqId], mode: WaitMode) -> Option<SimTime> {
        let times = reqs
            .iter()
            .map(|id| self.reqs[r].get(id).and_then(|s| s.complete_at));
        match mode {
            WaitMode::All => {
                let mut at = self.local[r];
                for t in times {
                    at = at.max(t?);
                }
                Some(at)
            }
            WaitMode::Any => {
                let earliest = times.flatten().min()?;
                Some(earliest.max(self.local[r]))
            }
        }
    }

    /// Pops completed requests out of the table for the resume message.
    fn collect_completions(&mut self, r: usize, reqs: &[ReqId], mode: WaitMode) -> Vec<Completion> {
        match mode {
            WaitMode::All => reqs
                .iter()
                .map(|&id| {
                    let state = self.reqs[r].remove(&id).expect("waited request exists");
                    Completion {
                        req: id,
                        payload: state.payload,
                        origin: state.origin,
                    }
                })
                .collect(),
            WaitMode::Any => {
                let (&winner, _) = reqs
                    .iter()
                    .filter_map(|id| {
                        self.reqs[r]
                            .get(id)
                            .and_then(|s| s.complete_at)
                            .map(|t| (id, t))
                    })
                    .min_by_key(|&(id, t)| (t, *id))
                    .expect("wait-any resumed without a completed request");
                let state = self.reqs[r].remove(&winner).expect("request exists");
                vec![Completion {
                    req: winner,
                    payload: state.payload,
                    origin: state.origin,
                }]
            }
        }
    }

    fn wake(&mut self, rank: usize, now: SimTime, completions: Vec<Completion>) {
        self.local[rank] = now;
        self.status[rank] = Status::Running;
        self.blocked_op[rank] = None;
        self.running += 1;
        // A send failure means the rank thread died; the subsequent drain
        // will surface its panic message.
        let _ = self.resume_tx[rank].send(Resume::Ready { now, completions });
    }

    fn abort_all(&mut self) {
        for tx in &self.resume_tx {
            let _ = tx.send(Resume::Abort);
        }
    }

    fn deadlock_detail(&self) -> String {
        let mut parts = Vec::new();
        for r in 0..self.p {
            match self.status[r] {
                Status::Done => {}
                Status::Running => parts.push(format!("rank {r}: running (internal error)")),
                Status::Blocked => {
                    let what = match self.blocked_op[r].as_ref() {
                        Some(BlockOp::Barrier) => "barrier".to_owned(),
                        Some(BlockOp::Wtime) => "wtime (internal error)".to_owned(),
                        Some(BlockOp::Wait { reqs, mode }) => {
                            let outstanding: Vec<String> = reqs
                                .iter()
                                .filter(|id| {
                                    self.reqs[r].get(id).is_none_or(|s| s.complete_at.is_none())
                                })
                                .map(|id| format!("req {id}"))
                                .collect();
                            format!("wait[{mode:?}] on {}", outstanding.join(", "))
                        }
                        None => "unknown".to_owned(),
                    };
                    parts.push(format!(
                        "rank {r}: blocked on {what} at t={}",
                        self.local[r]
                    ));
                }
            }
        }
        parts.join("; ")
    }
}
