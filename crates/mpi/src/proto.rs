//! Crate-private wire protocol between rank threads and the engine.

use crate::msg::{Peer, Tag, TagSel};
use collsel_netsim::{SimSpan, SimTime};
use collsel_support::Bytes;

/// Rank-local request identifier (allocated monotonically per rank).
pub(crate) type ReqId = u32;

/// A non-blocking operation posted by a rank (fire-and-forget: the engine
/// learns about it no later than the rank's next blocking call).
#[derive(Debug)]
pub(crate) enum PostOp {
    Isend {
        req: ReqId,
        dst: usize,
        tag: Tag,
        payload: Bytes,
    },
    Irecv {
        req: ReqId,
        src: Peer,
        tag: TagSel,
    },
    /// Local computation: advances the rank's virtual clock by `span`
    /// without touching the network (the `Compute(γ)` op of the
    /// schedule IR).
    Compute {
        span: SimSpan,
    },
}

/// How a set of requests is waited on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WaitMode {
    All,
    Any,
}

/// A blocking operation: the rank parks until the engine resumes it.
#[derive(Debug)]
pub(crate) enum BlockOp {
    Wait {
        reqs: Vec<ReqId>,
        mode: WaitMode,
    },
    Barrier,
    /// Read the rank's local virtual clock (resumes immediately).
    Wtime,
}

/// Everything a rank can tell the engine.
#[derive(Debug)]
pub(crate) enum RankMsg {
    Post { rank: usize, op: PostOp },
    Block { rank: usize, op: BlockOp },
    Finished { rank: usize },
    Panicked { rank: usize, message: String },
}

/// Completion report for one waited request.
#[derive(Debug)]
pub(crate) struct Completion {
    pub req: ReqId,
    /// Payload for receives; `None` for sends.
    pub payload: Option<Bytes>,
    /// (source, tag) of the matched message for receives.
    pub origin: Option<(usize, Tag)>,
}

/// The engine's reply that unparks a blocked rank.
#[derive(Debug)]
pub(crate) enum Resume {
    /// The blocking operation finished at `now` (the rank's new local time).
    Ready {
        now: SimTime,
        completions: Vec<Completion>,
    },
    /// The simulation is being torn down (another rank panicked or the
    /// engine detected an unrecoverable error); the rank thread must exit.
    Abort,
}
