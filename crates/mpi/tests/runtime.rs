//! Behavioural tests of the simulated MPI runtime.

use collsel_mpi::{simulate, Peer, SimError, TagSel};
use collsel_netsim::{ClusterModel, NoiseParams, SimSpan, SimTime};
use collsel_support::Bytes;

/// A small quiet cluster for exact-time assertions: 1 GB/s, 10 us wire
/// latency, no hops/gaps/overheads/noise.
fn quiet(nodes: usize) -> ClusterModel {
    ClusterModel::builder("quiet", nodes)
        .bandwidth_gbps(8.0)
        .wire_latency(SimSpan::from_micros(10))
        .switch_hops(0, SimSpan::ZERO)
        .per_msg_gap(SimSpan::ZERO)
        .overheads(SimSpan::ZERO, SimSpan::ZERO)
        .noise(NoiseParams::OFF)
        .build()
}

fn payload(n: usize) -> Bytes {
    Bytes::from(vec![0xabu8; n])
}

#[test]
fn point_to_point_delivers_payload() {
    let out = simulate(&quiet(2), 2, 0, |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 42, Bytes::from_static(b"hello"));
            Vec::new()
        } else {
            let (data, status) = ctx.recv(0, 42);
            assert_eq!(status.source, 0);
            assert_eq!(status.tag, 42);
            assert_eq!(status.len, 5);
            data.to_vec()
        }
    })
    .unwrap();
    assert_eq!(out.results[1], b"hello");
}

#[test]
fn p2p_time_is_latency_plus_serialization() {
    // 1000 bytes at 1 GB/s = 1 us serialization; 10 us latency.
    let out = simulate(&quiet(2), 2, 0, |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 0, payload(1000));
            SimTime::ZERO
        } else {
            let _ = ctx.recv(0, 0);
            ctx.wtime()
        }
    })
    .unwrap();
    assert_eq!(out.results[1], SimTime::from_nanos(11_000));
}

#[test]
fn runs_are_deterministic_across_repeats() {
    let cluster = ClusterModel::grisou();
    let run = || {
        simulate(&cluster, 8, 33, |ctx| {
            let t0 = ctx.wtime();
            if ctx.rank() == 0 {
                for dst in 1..ctx.size() {
                    ctx.send(dst, 0, payload(8192));
                }
            } else {
                let _ = ctx.recv(0, 0);
            }
            ctx.barrier();
            ctx.wtime() - t0
        })
        .unwrap()
        .results
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_change_noisy_timings() {
    let cluster = ClusterModel::grisou(); // default noise on
    let run = |seed| {
        simulate(&cluster, 4, seed, |ctx| {
            if ctx.rank() == 0 {
                for dst in 1..ctx.size() {
                    ctx.send(dst, 0, payload(65536));
                }
            } else {
                let _ = ctx.recv(0, 0);
            }
            ctx.barrier();
            ctx.wtime()
        })
        .unwrap()
        .results
    };
    assert_ne!(run(1), run(2));
}

#[test]
fn nonblocking_sends_overlap() {
    // Two isends of 1000 B from rank 0: serialized on the NIC, so the
    // second is delivered 1 us after the first, not a full p2p later.
    let out = simulate(&quiet(3), 3, 0, |ctx| match ctx.rank() {
        0 => {
            let r1 = ctx.isend(1, 0, payload(1000));
            let r2 = ctx.isend(2, 0, payload(1000));
            ctx.wait_all_sends(vec![r1, r2]);
            SimTime::ZERO
        }
        _ => {
            let _ = ctx.recv(0, 0);
            ctx.wtime()
        }
    })
    .unwrap();
    assert_eq!(out.results[1], SimTime::from_nanos(11_000));
    assert_eq!(out.results[2], SimTime::from_nanos(12_000));
}

#[test]
fn rendezvous_waits_for_receiver() {
    // Eager threshold is 64 KB by default; a 1 MB message cannot start
    // until the receiver posts, so a late receiver delays the sender-side
    // completion too.
    let cluster = quiet(2);
    let out = simulate(&cluster, 2, 0, |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 0, payload(1 << 20));
            ctx.wtime()
        } else {
            // Delay posting the receive by first synchronising on a
            // late message exchange with rank 0? Simpler: the receive
            // is posted immediately at t=0 here; the handshake still
            // costs two control latencies.
            let _ = ctx.recv(0, 0);
            ctx.wtime()
        }
    })
    .unwrap();
    // Transfer: ready = 0 + 2*10us (RTS/CTS), + 1 MiB at 1 GB/s
    // = 1048.576 us, + 10 us latency.
    let expected = SimTime::from_nanos(20_000 + 1_048_576 + 10_000);
    assert_eq!(out.results[1], expected);
    // Sender completes when the NIC finishes: 20 us + 1048.576 us.
    assert_eq!(out.results[0], SimTime::from_nanos(20_000 + 1_048_576));
}

#[test]
fn eager_send_completes_without_receiver() {
    // A small send finishes locally even though the receive is posted
    // (much) later in virtual time.
    let out = simulate(&quiet(3), 3, 0, |ctx| match ctx.rank() {
        0 => {
            ctx.send(2, 0, payload(100));
            ctx.wtime()
        }
        1 => {
            // Keep rank 2 busy so its recv from 0 is posted late.
            ctx.send(2, 1, payload(1000));
            SimTime::ZERO
        }
        _ => {
            let _ = ctx.recv(1, 1);
            let (_, st) = ctx.recv(0, 0);
            assert_eq!(st.source, 0);
            ctx.wtime()
        }
    })
    .unwrap();
    assert!(out.results[0] < out.results[2]);
}

#[test]
fn message_order_between_pair_is_fifo() {
    let out = simulate(&quiet(2), 2, 0, |ctx| {
        if ctx.rank() == 0 {
            for i in 0..10u8 {
                ctx.send(1, 7, Bytes::from(vec![i]));
            }
            Vec::new()
        } else {
            (0..10).map(|_| ctx.recv(0, 7).0[0]).collect::<Vec<u8>>()
        }
    })
    .unwrap();
    assert_eq!(out.results[1], (0..10).collect::<Vec<u8>>());
}

#[test]
fn tags_select_messages_out_of_order() {
    let out = simulate(&quiet(2), 2, 0, |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 1, Bytes::from_static(b"one"));
            ctx.send(1, 2, Bytes::from_static(b"two"));
            Vec::new()
        } else {
            // Receive tag 2 first even though tag 1 arrived first.
            let (two, _) = ctx.recv(0, 2);
            let (one, _) = ctx.recv(0, 1);
            vec![two.to_vec(), one.to_vec()]
        }
    })
    .unwrap();
    assert_eq!(out.results[1], vec![b"two".to_vec(), b"one".to_vec()]);
}

#[test]
fn wildcard_source_and_tag() {
    let out = simulate(&quiet(3), 3, 0, |ctx| match ctx.rank() {
        0 => {
            let (data, status) = ctx.recv(Peer::Any, TagSel::Any);
            (data.len(), status.source)
        }
        1 => {
            ctx.send(0, 5, payload(64));
            (0, 0)
        }
        _ => (0, 0),
    })
    .unwrap();
    assert_eq!(out.results[0], (64, 1));
}

#[test]
fn wait_any_returns_earliest() {
    let out = simulate(&quiet(3), 3, 0, |ctx| match ctx.rank() {
        0 => {
            // Rank 2's message is bigger, so rank 1's arrives first.
            let r1 = ctx.irecv(1, 0);
            let r2 = ctx.irecv(2, 0);
            let (idx, _, status, rest) = ctx.wait_any_recv(vec![r1, r2]);
            assert_eq!(idx, 0);
            assert_eq!(status.source, 1);
            let remaining = ctx.wait_all_recvs(rest);
            assert_eq!(remaining[0].1.source, 2);
            true
        }
        r => {
            ctx.send(0, 0, payload(if r == 1 { 100 } else { 50_000 }));
            true
        }
    })
    .unwrap();
    assert!(out.results.iter().all(|&b| b));
}

#[test]
fn barrier_synchronises_clocks() {
    let out = simulate(&quiet(4), 4, 0, |ctx| {
        if ctx.rank() == 1 {
            // Make rank 1 late by exchanging an extra large message.
            ctx.send(1, 9, payload(50_000)); // self-send
            let _ = ctx.recv(1, 9);
        }
        ctx.barrier();
        ctx.wtime()
    })
    .unwrap();
    let t0 = out.results[0];
    assert!(out.results.iter().all(|&t| t == t0), "{:?}", out.results);
}

#[test]
fn self_send_works() {
    let out = simulate(&quiet(1), 1, 0, |ctx| {
        ctx.send(0, 3, Bytes::from_static(b"me"));
        let (data, st) = ctx.recv(0, 3);
        assert_eq!(st.source, 0);
        data.to_vec()
    })
    .unwrap();
    assert_eq!(out.results[0], b"me");
}

#[test]
fn sendrecv_exchanges_without_deadlock() {
    let out = simulate(&quiet(2), 2, 0, |ctx| {
        let other = 1 - ctx.rank();
        let (data, _) = ctx.sendrecv(other, 0, Bytes::from(vec![ctx.rank() as u8; 4]), other, 0);
        data[0]
    })
    .unwrap();
    assert_eq!(out.results, vec![1, 0]);
}

#[test]
fn deadlock_is_detected() {
    let err = simulate(&quiet(2), 2, 0, |ctx| {
        // Both ranks receive, nobody sends.
        let _ = ctx.recv(1 - ctx.rank(), 0);
    })
    .unwrap_err();
    match err {
        SimError::Deadlock { detail } => {
            assert!(detail.contains("rank 0"), "{detail}");
            assert!(detail.contains("rank 1"), "{detail}");
        }
        other => panic!("expected deadlock, got {other}"),
    }
}

#[test]
fn barrier_with_finished_rank_deadlocks() {
    let err = simulate(&quiet(2), 2, 0, |ctx| {
        if ctx.rank() == 0 {
            ctx.barrier();
        }
        // Rank 1 exits immediately: the barrier can never complete.
    })
    .unwrap_err();
    assert!(matches!(err, SimError::Deadlock { .. }));
}

#[test]
fn rank_panic_is_reported() {
    let err = simulate(&quiet(2), 2, 0, |ctx| {
        if ctx.rank() == 1 {
            panic!("intentional failure");
        }
        ctx.barrier();
    })
    .unwrap_err();
    match err {
        SimError::RankPanic { rank, message } => {
            assert_eq!(rank, 1);
            assert!(message.contains("intentional failure"));
        }
        other => panic!("expected rank panic, got {other}"),
    }
}

#[test]
fn report_counts_messages_and_bytes() {
    let out = simulate(&quiet(3), 3, 0, |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 0, payload(100));
            ctx.send(2, 0, payload(200));
        } else {
            let _ = ctx.recv(0, 0);
        }
    })
    .unwrap();
    assert_eq!(out.report.messages, 2);
    assert_eq!(out.report.bytes, 300);
    assert!(out.report.makespan > SimTime::ZERO);
}

#[test]
fn shared_memory_path_is_used_for_colocated_ranks() {
    // 2 nodes x 2 cpus, cyclic mapping: ranks 0 and 2 share node 0.
    let cluster = ClusterModel::builder("shm", 2)
        .cpus_per_node(2)
        .noise(NoiseParams::OFF)
        .build();
    let out = simulate(&cluster, 4, 0, |ctx| {
        if ctx.rank() == 0 {
            ctx.send(2, 0, payload(128));
        } else if ctx.rank() == 2 {
            let _ = ctx.recv(0, 0);
        }
    })
    .unwrap();
    assert_eq!(out.report.shm_messages, 1);
}

#[test]
fn wtime_is_monotonic_per_rank() {
    let out = simulate(&quiet(2), 2, 0, |ctx| {
        let mut times = Vec::new();
        for _ in 0..5 {
            times.push(ctx.wtime());
            if ctx.rank() == 0 {
                ctx.send(1, 0, payload(1000));
            } else {
                let _ = ctx.recv(0, 0);
            }
        }
        times
    })
    .unwrap();
    for times in &out.results {
        for w in times.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}

#[test]
fn many_ranks_full_exchange() {
    // Each rank sends to every other rank and receives from every other
    // rank; checks payload routing at a modest scale.
    let p = 16;
    let out = simulate(&quiet(p), p, 0, |ctx| {
        let me = ctx.rank() as u8;
        let mut recvs = Vec::new();
        for src in 0..ctx.size() {
            if src != ctx.rank() {
                recvs.push(ctx.irecv(src, 0));
            }
        }
        let mut sends = Vec::new();
        for dst in 0..ctx.size() {
            if dst != ctx.rank() {
                sends.push(ctx.isend(dst, 0, Bytes::from(vec![me; 8])));
            }
        }
        ctx.wait_all_sends(sends);
        let got = ctx.wait_all_recvs(recvs);
        got.iter().all(|(data, st)| data[0] as usize == st.source)
    })
    .unwrap();
    assert!(out.results.iter().all(|&ok| ok));
}

#[test]
fn isend_validates_destination() {
    let err = simulate(&quiet(2), 2, 0, |ctx| {
        if ctx.rank() == 0 {
            ctx.send(5, 0, payload(1));
        } else {
            ctx.barrier();
        }
    })
    .unwrap_err();
    match err {
        SimError::RankPanic { rank, message } => {
            assert_eq!(rank, 0);
            assert!(message.contains("isend to rank"), "{message}");
        }
        other => panic!("expected rank panic, got {other}"),
    }
}

#[test]
#[should_panic(expected = "process slots")]
fn simulate_validates_rank_count() {
    let _ = simulate(&quiet(2), 64, 0, |_| ());
}

#[test]
fn traced_simulation_records_every_transfer() {
    use collsel_mpi::simulate_traced;
    use collsel_netsim::trace::summarize;
    let out = simulate_traced(&quiet(3), 3, 0, |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 0, payload(100));
            ctx.send(2, 0, payload(200));
        } else {
            let _ = ctx.recv(0, 0);
        }
    })
    .unwrap();
    assert_eq!(out.report.trace.len(), 2);
    let s = summarize(&out.report.trace);
    assert_eq!(s.transfers, 2);
    assert_eq!(s.bytes, 300);
    assert!(s.last_delivery > SimTime::ZERO);
    // The untraced path stays trace-free.
    let out = simulate(&quiet(2), 2, 0, |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 0, payload(10));
        } else {
            let _ = ctx.recv(0, 0);
        }
    })
    .unwrap();
    assert!(out.report.trace.is_empty());
}

#[test]
fn trace_exports_to_chrome_json() {
    use collsel_mpi::simulate_traced;
    use collsel_netsim::trace::to_chrome_trace;
    let out = simulate_traced(&quiet(4), 4, 0, |ctx| {
        if ctx.rank() == 0 {
            for dst in 1..ctx.size() {
                ctx.send(dst, 0, payload(64));
            }
        } else {
            let _ = ctx.recv(0, 0);
        }
    })
    .unwrap();
    let json = to_chrome_trace(&out.report.trace);
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
}
