//! Direct tests of the engine's deadlock detector: programs built to
//! block forever must return [`SimError::Deadlock`] with a `detail`
//! string useful enough to debug the cycle, and must never hang the
//! host test process.

use collsel_mpi::{simulate, simulate_with, SimError, SimOptions};
use collsel_netsim::{ClusterModel, NoiseParams, SimSpan};
use collsel_support::Bytes;

fn quiet(nodes: usize) -> ClusterModel {
    ClusterModel::builder("quiet", nodes)
        .noise(NoiseParams::OFF)
        .build()
}

fn expect_deadlock<T: Send + std::fmt::Debug>(
    result: Result<collsel_mpi::SimOutcome<T>, SimError>,
) -> String {
    match result {
        Err(SimError::Deadlock { detail }) => detail,
        Err(other) => panic!("expected Deadlock, got {other:?}"),
        Ok(out) => panic!("expected Deadlock, program finished: {:?}", out.results),
    }
}

#[test]
fn two_rank_recv_recv_cycle_is_detected() {
    // Both ranks block in recv waiting for the other: the classic cycle.
    let detail = expect_deadlock(simulate(&quiet(2), 2, 0, |ctx| {
        let peer = 1 - ctx.rank();
        let _ = ctx.recv(peer, 0);
    }));
    // The detail must name the blocked ranks so the cycle is debuggable.
    assert!(
        detail.contains('0') && detail.contains('1'),
        "detail should identify both blocked ranks: {detail:?}"
    );
}

#[test]
fn four_rank_ring_recv_cycle_is_detected() {
    // rank r waits for r+1 (mod 4): a 4-cycle with no sender anywhere.
    let detail = expect_deadlock(simulate(&quiet(4), 4, 0, |ctx| {
        let next = (ctx.rank() + 1) % 4;
        let _ = ctx.recv(next, 0);
    }));
    for rank in 0..4 {
        assert!(
            detail.contains(&rank.to_string()),
            "all four blocked ranks should appear in the detail: {detail:?}"
        );
    }
}

#[test]
fn rendezvous_send_cycle_is_detected() {
    // Large (rendezvous-protocol) blocking sends in a ring: every rank
    // waits for a receiver that is itself stuck sending.
    let big = Bytes::from(vec![0u8; 4 << 20]);
    let detail = expect_deadlock(simulate(&quiet(4), 4, 0, move |ctx| {
        let next = (ctx.rank() + 1) % 4;
        ctx.send(next, 0, big.clone());
        let _ = ctx.recv((ctx.rank() + 3) % 4, 0);
    }));
    assert!(!detail.is_empty(), "detail must not be empty");
}

#[test]
fn partial_deadlock_with_finished_ranks_is_detected() {
    // Rank 0 finishes immediately; ranks 1 and 2 deadlock on each
    // other. The engine must see through the finished rank.
    let detail = expect_deadlock(simulate(&quiet(3), 3, 0, |ctx| match ctx.rank() {
        0 => {}
        1 => {
            let _ = ctx.recv(2, 7);
        }
        _ => {
            let _ = ctx.recv(1, 7);
        }
    }));
    assert!(
        detail.contains('1') && detail.contains('2'),
        "the two live blocked ranks should be reported: {detail:?}"
    );
}

#[test]
fn mismatched_tag_never_matches_and_deadlocks() {
    // The send exists but carries the wrong tag: the recv can never
    // match, which is a deadlock once both sides are quiescent.
    let detail = expect_deadlock(simulate(&quiet(2), 2, 0, |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 5, Bytes::from_static(b"wrong tag"));
            let _ = ctx.recv(1, 6);
        } else {
            let _ = ctx.recv(0, 6);
        }
    }));
    assert!(!detail.is_empty());
}

#[test]
fn deadlock_is_reported_even_with_a_watchdog_armed() {
    // The deadlock fires at a finite virtual time, long before any
    // generous deadline: the detector must win, not the watchdog.
    let opts = SimOptions::with_deadline(SimSpan::from_secs_f64(100.0));
    let result = simulate_with(&quiet(2), 2, 0, opts, |ctx| {
        let peer = 1 - ctx.rank();
        let _ = ctx.recv(peer, 0);
    });
    let _ = expect_deadlock(result);
}

#[test]
fn deadlock_detail_is_stable_across_runs() {
    // Determinism extends to failure: the same program yields the same
    // diagnostic, which keeps chaos-suite logs diffable.
    let run = || {
        expect_deadlock(simulate(&quiet(4), 4, 9, |ctx| {
            let next = (ctx.rank() + 1) % 4;
            let _ = ctx.recv(next, 0);
        }))
    };
    assert_eq!(run(), run());
}
