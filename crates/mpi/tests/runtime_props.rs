//! Property tests of the MPI runtime: random communication patterns
//! must complete, route correctly, and keep virtual time coherent.

use collsel_mpi::simulate;
use collsel_netsim::{ClusterModel, NoiseParams, SimSpan, SimTime};
use collsel_support::prelude::*;
use collsel_support::Bytes;

fn cluster(nodes: usize) -> ClusterModel {
    ClusterModel::builder("prop", nodes)
        .bandwidth_gbps(10.0)
        .wire_latency(SimSpan::from_micros(10))
        .noise(NoiseParams::OFF)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Permutation routing: every rank sends one message according to a
    /// random permutation and receives exactly the message addressed to
    /// it.
    #[test]
    fn permutation_routing(
        p in 2usize..12,
        perm_seed in any::<u64>(),
        len in 1usize..10_000,
    ) {
        // Build a permutation from the seed (Fisher-Yates with an LCG).
        let mut perm: Vec<usize> = (0..p).collect();
        let mut state = perm_seed | 1;
        for i in (1..p).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let perm2 = perm.clone();
        let out = simulate(&cluster(p), p, 0, move |ctx| {
            let dst = perm2[ctx.rank()];
            let r = ctx.irecv(collsel_mpi::Peer::Any, 7);
            let s = ctx.isend(dst, 7, Bytes::from(vec![ctx.rank() as u8; len]));
            ctx.wait_send(s);
            let (data, status) = ctx.wait_recv(r);
            (data[0] as usize, status.source, data.len())
        }).unwrap();
        for (rank, &(payload_src, status_src, got_len)) in out.results.iter().enumerate() {
            prop_assert_eq!(payload_src, status_src);
            prop_assert_eq!(perm[status_src], rank, "message misrouted");
            prop_assert_eq!(got_len, len);
        }
    }

    /// Random many-to-one traffic with wildcard receives: the root
    /// receives exactly the multiset of messages sent.
    #[test]
    fn many_to_one_with_wildcards(
        p in 2usize..10,
        counts in prop::collection::vec(0usize..5, 1..10),
    ) {
        let per_rank: Vec<usize> = (0..p - 1).map(|i| counts[i % counts.len()]).collect();
        let total: usize = per_rank.iter().sum();
        let per_rank2 = per_rank.clone();
        let out = simulate(&cluster(p), p, 0, move |ctx| {
            if ctx.rank() == 0 {
                let mut seen = vec![0usize; ctx.size()];
                for _ in 0..total {
                    let (_, status) = ctx.recv(collsel_mpi::Peer::Any, 3);
                    seen[status.source] += 1;
                }
                seen
            } else {
                for _ in 0..per_rank2[ctx.rank() - 1] {
                    ctx.send(0, 3, Bytes::from_static(b"x"));
                }
                Vec::new()
            }
        }).unwrap();
        for (i, &expected) in per_rank.iter().enumerate() {
            prop_assert_eq!(out.results[0][i + 1], expected);
        }
    }

    /// Virtual time never runs backwards on any rank, and a later
    /// barrier exit is at least the maximum of earlier exits.
    #[test]
    fn clocks_are_coherent(p in 2usize..10, rounds in 1usize..6) {
        let out = simulate(&cluster(p), p, 0, move |ctx| {
            let mut exits = Vec::new();
            for r in 0..rounds {
                // Staggered work: rank i sends to rank (i+1)%p in round r
                // if i % (r+2) == 0.
                let nxt = (ctx.rank() + 1) % ctx.size();
                let prv = (ctx.rank() + ctx.size() - 1) % ctx.size();
                if ctx.rank() % (r + 2) == 0 {
                    ctx.send(nxt, r as u32, Bytes::from(vec![0u8; 512]));
                }
                if prv % (r + 2) == 0 {
                    let _ = ctx.recv(prv, r as u32);
                }
                ctx.barrier();
                exits.push(ctx.wtime());
            }
            exits
        }).unwrap();
        // Within each rank: monotone. Across ranks: equal per round
        // (the built-in barrier synchronises exactly).
        for round in 0..rounds {
            let t0: SimTime = out.results[0][round];
            for exits in &out.results {
                prop_assert_eq!(exits[round], t0);
                if round > 0 {
                    prop_assert!(exits[round] >= exits[round - 1]);
                }
            }
        }
    }

    /// Message counters equal exactly the number of sends issued.
    #[test]
    fn counters_match_traffic(p in 2usize..8, msgs in 0usize..12) {
        let out = simulate(&cluster(p), p, 0, move |ctx| {
            if ctx.rank() == 0 {
                for i in 0..msgs {
                    ctx.send(1 + i % (ctx.size() - 1), 9, Bytes::from(vec![0u8; 100]));
                }
            } else {
                let mine = (0..msgs).filter(|i| 1 + i % (p - 1) == ctx.rank()).count();
                for _ in 0..mine {
                    let _ = ctx.recv(0, 9);
                }
            }
        }).unwrap();
        prop_assert_eq!(out.report.messages, msgs as u64);
        prop_assert_eq!(out.report.bytes, (msgs * 100) as u64);
    }
}
