//! Property tests of the noise stream and the fault-injection plans:
//! determinism is the load-bearing invariant (seeded replay of both the
//! jitter and the fault schedule), plus the statistical shape the noise
//! model promises.

use collsel_netsim::{ClusterModel, FaultPlan, Noise, NoiseParams, SimTime};
use collsel_support::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The log-normal jitter factor has median ≈ 1: over a large
    /// sample, roughly half the draws land on each side of 1.0 and the
    /// factors stay positive.
    #[test]
    fn lognormal_jitter_median_is_one(
        seed in 0u64..1_000,
        sigma_milli in 1u32..300,
    ) {
        let sigma = sigma_milli as f64 / 1000.0;
        let mut noise = Noise::new(NoiseParams::new(sigma), seed);
        let n = 2000usize;
        let mut above = 0usize;
        for _ in 0..n {
            let f = noise.factor();
            prop_assert!(f > 0.0, "jitter factor must be positive, got {f}");
            prop_assert!(f.is_finite());
            if f > 1.0 {
                above += 1;
            }
        }
        // Binomial(2000, 0.5) is within ±5σ ≈ ±112 of 1000 essentially
        // always; seeded draws make this deterministic anyway.
        let frac = above as f64 / n as f64;
        prop_assert!(
            (0.44..0.56).contains(&frac),
            "median should split the sample: {frac} above 1.0"
        );
    }

    /// `sigma == 0` is bit-for-bit deterministic: every factor is
    /// exactly 1.0, whatever the seed.
    #[test]
    fn zero_sigma_is_exactly_one(seed in 0u64..10_000) {
        let mut noise = Noise::new(NoiseParams::OFF, seed);
        for _ in 0..100 {
            prop_assert_eq!(noise.factor(), 1.0);
        }
    }

    /// The same seed yields the same jitter stream, draw by draw.
    #[test]
    fn same_seed_same_jitter_stream(seed in 0u64..10_000, sigma_milli in 1u32..300) {
        let sigma = sigma_milli as f64 / 1000.0;
        let mut a = Noise::new(NoiseParams::new(sigma), seed);
        let mut b = Noise::new(NoiseParams::new(sigma), seed);
        for _ in 0..256 {
            prop_assert_eq!(a.factor().to_bits(), b.factor().to_bits());
        }
    }

    /// A canned fault plan is a pure function of its inputs: the same
    /// seed produces the identical schedule (and a different seed
    /// perturbs it, for at least one of the generators).
    #[test]
    fn same_seed_same_fault_schedule(
        nodes in 4usize..64,
        count in 1usize..8,
        seed in 0u64..10_000,
    ) {
        let a = FaultPlan::degraded_links(nodes, count, 5.0, seed)
            .merge(FaultPlan::stragglers(nodes, count, 8.0, seed))
            .merge(FaultPlan::brownouts(
                nodes,
                count,
                collsel_netsim::SimSpan::from_millis(100),
                collsel_netsim::SimSpan::from_millis(10),
                4.0,
                seed,
            ));
        let b = FaultPlan::degraded_links(nodes, count, 5.0, seed)
            .merge(FaultPlan::stragglers(nodes, count, 8.0, seed))
            .merge(FaultPlan::brownouts(
                nodes,
                count,
                collsel_netsim::SimSpan::from_millis(100),
                collsel_netsim::SimSpan::from_millis(10),
                4.0,
                seed,
            ));
        prop_assert_eq!(&a, &b, "same seed must replay the same plan");
        // Queries agree too (spot-check the link factor surface).
        for x in 0..nodes.min(8) {
            for y in 0..nodes.min(8) {
                prop_assert_eq!(
                    a.link_factor(x, y, SimTime::from_nanos(50_000_000)).to_bits(),
                    b.link_factor(x, y, SimTime::from_nanos(50_000_000)).to_bits()
                );
            }
        }
    }

    /// The parse grammar round-trips every canned name and is seed
    /// stable: `NAME:SEED` twice gives identical plans.
    #[test]
    fn parse_is_deterministic(
        nodes in 4usize..64,
        seed in 0u64..10_000,
        which in 0usize..5,
    ) {
        let name = ["none", "degraded-link", "straggler", "brownout", "chaos"][which];
        let spec = format!("{name}:{seed}");
        let a = FaultPlan::parse(&spec, nodes).expect("canned name parses");
        let b = FaultPlan::parse(&spec, nodes).expect("canned name parses");
        prop_assert_eq!(a, b);
    }

    /// An empty plan is inert: every query returns the neutral element
    /// regardless of arguments.
    #[test]
    fn empty_plan_is_neutral(
        a in 0usize..64,
        b in 0usize..64,
        t in 0u64..1_000_000_000,
    ) {
        let plan = FaultPlan::none();
        prop_assert!(plan.is_none());
        prop_assert_eq!(plan.link_factor(a, b, SimTime::from_nanos(t)), 1.0);
        prop_assert_eq!(plan.cpu_factor(a), 1.0);
        prop_assert!(plan.spike_params().is_none());
    }

    /// Faulted and fault-free fabrics diverge only when the plan is
    /// non-empty: attaching `FaultPlan::none()` leaves every transfer
    /// plan bit-identical (the zero-cost-when-disabled invariant).
    #[test]
    fn none_plan_leaves_fabric_bit_identical(
        nodes in 2usize..16,
        bytes in 1usize..1_000_000,
        seed in 0u64..1_000,
    ) {
        let base = ClusterModel::builder("prop", nodes).build();
        let with_none = base.clone().with_faults(FaultPlan::none());
        let mut f1 = collsel_netsim::Fabric::new(base, seed);
        let mut f2 = collsel_netsim::Fabric::new(with_none, seed);
        for i in 0..8u64 {
            let ready = SimTime::from_nanos(i * 1000);
            let p1 = f1.plan_transfer(0, nodes.min(2) - 1, bytes, ready);
            let p2 = f2.plan_transfer(0, nodes.min(2) - 1, bytes, ready);
            prop_assert_eq!(p1.delivered, p2.delivered);
            prop_assert_eq!(p1.send_done, p2.send_done);
            prop_assert_eq!(p1.wire_start, p2.wire_start);
        }
    }
}
