//! Property tests of the network fabric's physical invariants.

use collsel_netsim::{ClusterModel, Fabric, NoiseParams, SimSpan, SimTime};
use collsel_support::prelude::*;

fn arb_cluster() -> impl Strategy<Value = ClusterModel> {
    (2usize..32, 1u64..101, 1u64..300, 1usize..3).prop_map(|(nodes, gbps, lat, cpus)| {
        ClusterModel::builder("prop", nodes)
            .cpus_per_node(cpus)
            .bandwidth_gbps(gbps as f64)
            .wire_latency(SimSpan::from_micros(lat))
            .noise(NoiseParams::OFF)
            .build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A transfer never starts before its payload is ready, never
    /// finishes before it starts, and inter-node deliveries respect the
    /// wire latency.
    #[test]
    fn transfer_causality(
        cluster in arb_cluster(),
        src_frac in 0.0f64..1.0,
        dst_frac in 0.0f64..1.0,
        bytes in 0usize..(1 << 22),
        ready_ns in 0u64..1_000_000,
    ) {
        let max = cluster.max_ranks();
        let src = (src_frac * (max - 1) as f64).round() as usize;
        let dst = (dst_frac * (max - 1) as f64).round() as usize;
        let mut fabric = Fabric::new(cluster.clone(), 0);
        let ready = SimTime::from_nanos(ready_ns);
        let plan = fabric.plan_transfer(src, dst, bytes, ready);
        prop_assert!(plan.wire_start >= ready);
        prop_assert!(plan.send_done >= plan.wire_start);
        prop_assert!(plan.delivered >= plan.wire_start);
        if !cluster.same_node(src, dst) {
            prop_assert!(
                plan.delivered >= plan.wire_start + cluster.one_way_latency()
            );
        }
    }

    /// Deliveries from one sender to one receiver are FIFO in plan
    /// order, whatever the ready times do.
    #[test]
    fn same_pair_transfers_fifo(
        cluster in arb_cluster(),
        sizes in prop::collection::vec(1usize..100_000, 1..20),
    ) {
        let mut fabric = Fabric::new(cluster, 0);
        let mut last = SimTime::ZERO;
        for (i, &bytes) in sizes.iter().enumerate() {
            let ready = SimTime::from_nanos((i as u64) * 10);
            let plan = fabric.plan_transfer(0, 1, bytes, ready);
            prop_assert!(plan.delivered >= last, "delivery overtook");
            last = plan.delivered;
        }
    }

    /// The transmit side serializes: n equal messages from one node
    /// leave no earlier than n serialization times.
    #[test]
    fn tx_side_serializes(
        cluster in arb_cluster(),
        n in 1usize..16,
        bytes in 1usize..100_000,
    ) {
        prop_assume!(cluster.max_ranks() >= 3);
        let mut fabric = Fabric::new(cluster.clone(), 0);
        // Send from rank 0 to a rank on a different node each time.
        let dst = (1..cluster.max_ranks())
            .find(|&r| !cluster.same_node(0, r));
        prop_assume!(dst.is_some());
        let dst = dst.unwrap();
        let mut last_done = SimTime::ZERO;
        for _ in 0..n {
            let plan = fabric.plan_transfer(0, dst, bytes, SimTime::ZERO);
            last_done = last_done.max(plan.send_done);
        }
        let serial = cluster.tx_duration(bytes) * n as u64;
        prop_assert!(
            last_done.as_nanos() >= serial.as_nanos(),
            "{} < {}", last_done.as_nanos(), serial.as_nanos()
        );
    }

    /// Noise never produces non-positive factors or unordered plans.
    #[test]
    fn noisy_plans_remain_causal(seed in any::<u64>(), bytes in 1usize..1_000_000) {
        let cluster = ClusterModel::grisou(); // default noise
        let mut fabric = Fabric::new(cluster, seed);
        let plan = fabric.plan_transfer(0, 1, bytes, SimTime::ZERO);
        prop_assert!(plan.send_done > SimTime::ZERO);
        prop_assert!(plan.delivered >= plan.send_done);
    }

    /// Bigger messages never deliver sooner on a fresh fabric.
    #[test]
    fn delivery_monotone_in_size(
        cluster in arb_cluster(),
        small in 0usize..500_000,
        extra in 1usize..500_000,
    ) {
        let a = Fabric::new(cluster.clone(), 0)
            .plan_transfer(0, 1, small, SimTime::ZERO)
            .delivered;
        let b = Fabric::new(cluster, 0)
            .plan_transfer(0, 1, small + extra, SimTime::ZERO)
            .delivered;
        prop_assert!(b >= a);
    }
}
