//! # collsel-netsim
//!
//! Deterministic discrete-event **cluster/network substrate** for the
//! `collsel` reproduction of Nuriyev & Lastovetsky, *"A New Model-Based
//! Approach to Performance Comparison of MPI Collective Algorithms"*
//! (PaCT 2021).
//!
//! The paper's experiments run Open MPI on two Grid'5000 clusters. This
//! crate provides the synthetic stand-in: a parameterised cluster model
//! ([`ClusterModel`], with calibrated [`ClusterModel::grisou`] and
//! [`ClusterModel::gros`] presets) and the dynamic network state
//! ([`Fabric`]) that turns (source, destination, bytes, ready-time)
//! into a transfer timeline with full-duplex per-NIC serialization,
//! shared-memory short-cuts for co-located ranks, and seeded noise.
//!
//! Crucially the substrate is **richer than the Hockney model** the
//! analytical layer fits on top of it (CPU overheads, NIC contention,
//! per-message gaps, protocol thresholds, jitter), so the paper's
//! estimation procedure has a genuine modelling gap to close — exactly as
//! on real hardware.
//!
//! ```
//! use collsel_netsim::{ClusterModel, Fabric, SimTime};
//!
//! let mut fabric = Fabric::new(ClusterModel::gros(), 42);
//! let plan = fabric.plan_transfer(0, 1, 8 * 1024, SimTime::ZERO);
//! assert!(plan.delivered > plan.wire_start);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cluster;
mod fabric;
pub mod fault;
mod noise;
mod time;
pub mod trace;

pub use cluster::{ClusterModel, ClusterModelBuilder, RackParams, RankMapping};
pub use fabric::{Fabric, FabricStats, TransferPlan};
pub use fault::{Brownout, FaultPlan, FaultPlanError, SpikeParams};
pub use noise::{Noise, NoiseParams};
pub use time::{SimSpan, SimTime};
pub use trace::TransferRecord;
