//! Cluster descriptions: the static parameters of the simulated platform.
//!
//! A [`ClusterModel`] captures everything the network substrate needs to
//! know about a platform: node count, CPUs (process slots) per node, NIC
//! bandwidth, wire and switch latencies, per-message CPU overheads, the
//! eager/rendezvous protocol threshold and the noise level.
//!
//! Two presets reproduce the paper's experimental platforms in shape:
//!
//! * [`ClusterModel::grisou`] — Grid'5000 Grisou: 51 nodes, 2 CPUs/node,
//!   10 Gbps Ethernet;
//! * [`ClusterModel::gros`] — Grid'5000 Gros: 124 nodes, 1 CPU/node
//!   (one process per node in the paper's runs), 25 Gbps Ethernet.
//!
//! The latency/overhead values are calibrated so that the measured
//! γ(P) table (paper Table 1) and the who-wins structure of the
//! broadcast comparison (paper Table 3) come out close to the published
//! numbers. They are *not* claimed to be the physical parameters of the
//! real clusters.

use crate::fault::FaultPlan;
use crate::noise::NoiseParams;
use crate::time::SimSpan;

/// How consecutive MPI ranks are laid out over nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankMapping {
    /// Rank `r` lives on node `r % nodes` (spread ranks over nodes first,
    /// then fill second CPUs). This mirrors `--map-by node` and is the
    /// default because the paper's small-P calibration experiments are
    /// inter-node experiments.
    Cyclic,
    /// Rank `r` lives on node `r / cpus_per_node` (fill a node's slots
    /// before moving on). This mirrors Open MPI's default `--map-by slot`.
    Block,
}

/// Static description of a simulated cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterModel {
    name: String,
    nodes: usize,
    cpus_per_node: usize,
    mapping: RankMapping,
    /// Sustained NIC/link bandwidth in bytes per second.
    bandwidth: f64,
    /// One-way wire propagation + NIC/driver latency (per message).
    wire_latency: SimSpan,
    /// Number of switch hops between two distinct nodes.
    switch_hops: u32,
    /// Added latency per switch hop.
    hop_latency: SimSpan,
    /// Per-message gap occupying the NIC in addition to the serialization
    /// time (descriptor handling, interrupt moderation).
    per_msg_gap: SimSpan,
    /// Sender CPU overhead charged to the calling process per message.
    send_overhead: SimSpan,
    /// Receiver CPU overhead charged to the calling process per message.
    recv_overhead: SimSpan,
    /// Messages strictly larger than this use the rendezvous protocol.
    eager_threshold: usize,
    /// Shared-memory (same node) copy bandwidth in bytes per second.
    shm_bandwidth: f64,
    /// Shared-memory one-way latency.
    shm_latency: SimSpan,
    /// Optional rack structure: nodes per rack and the uplink
    /// oversubscription factor (`None` = one flat non-blocking switch).
    racks: Option<RackParams>,
    noise: NoiseParams,
    /// Injected faults ([`FaultPlan::none`] for a healthy cluster).
    faults: FaultPlan,
}

/// Rack-level topology: nodes are grouped into racks whose uplinks to
/// the core switch are oversubscribed, as in real fat-tree deployments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RackParams {
    /// Number of nodes per rack (the last rack may be partial).
    pub nodes_per_rack: usize,
    /// Oversubscription factor `F >= 1`: the rack uplink carries
    /// `nodes_per_rack / F` node-bandwidths.
    pub oversubscription: f64,
    /// Extra one-way latency for crossing between racks.
    pub cross_rack_latency: SimSpan,
}

impl ClusterModel {
    /// Starts building a custom cluster. `nodes` is the number of physical
    /// nodes; every other parameter has a sensible commodity-Ethernet
    /// default that can be overridden.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn builder(name: impl Into<String>, nodes: usize) -> ClusterModelBuilder {
        assert!(nodes > 0, "a cluster needs at least one node");
        ClusterModelBuilder {
            model: ClusterModel {
                name: name.into(),
                nodes,
                cpus_per_node: 1,
                mapping: RankMapping::Cyclic,
                bandwidth: 1.25e9, // 10 Gbps
                wire_latency: SimSpan::from_micros(30),
                switch_hops: 1,
                hop_latency: SimSpan::from_micros(1),
                per_msg_gap: SimSpan::from_nanos(500),
                send_overhead: SimSpan::from_micros(2),
                recv_overhead: SimSpan::from_micros(2),
                eager_threshold: 64 * 1024,
                shm_bandwidth: 8.0e9,
                shm_latency: SimSpan::from_nanos(600),
                racks: None,
                noise: NoiseParams::default(),
                faults: FaultPlan::none(),
            },
        }
    }

    /// The Grid'5000 **Grisou** cluster: 51 nodes, 2 × Intel Xeon E5-2630 v3
    /// per node, 10 Gbps Ethernet. The paper runs one process per CPU, at
    /// most 90 processes.
    ///
    /// Latency components are calibrated so the non-blocking linear-tree
    /// γ(P) lands near paper Table 1 (γ(3)≈1.11 … γ(7)≈1.54).
    pub fn grisou() -> ClusterModel {
        ClusterModel::builder("grisou", 51)
            .cpus_per_node(2)
            .bandwidth_gbps(10.0)
            .wire_latency(SimSpan::from_micros(52))
            .switch_hops(2, SimSpan::from_micros(1))
            .per_msg_gap(SimSpan::from_nanos(500))
            .overheads(SimSpan::from_micros(2), SimSpan::from_micros(2))
            .build()
    }

    /// The Grid'5000 **Gros** cluster: 124 nodes, 1 × Intel Xeon Gold 5220
    /// per node, 25 Gbps Ethernet. The paper runs at most 124 processes.
    ///
    /// Calibrated so γ(P) lands near paper Table 1 (γ(3)≈1.08 … γ(7)≈1.42).
    pub fn gros() -> ClusterModel {
        ClusterModel::builder("gros", 124)
            .cpus_per_node(1)
            .bandwidth_gbps(25.0)
            .wire_latency(SimSpan::from_micros(30))
            .switch_hops(2, SimSpan::from_nanos(500))
            .per_msg_gap(SimSpan::from_nanos(500))
            .overheads(SimSpan::from_nanos(1_500), SimSpan::from_nanos(1_500))
            .build()
    }

    /// The cluster's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Process slots (CPUs) per node.
    pub fn cpus_per_node(&self) -> usize {
        self.cpus_per_node
    }

    /// Maximum number of processes this cluster can host
    /// (`nodes × cpus_per_node`).
    pub fn max_ranks(&self) -> usize {
        self.nodes * self.cpus_per_node
    }

    /// The rank→node mapping policy.
    pub fn mapping(&self) -> RankMapping {
        self.mapping
    }

    /// The physical node hosting `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= self.max_ranks()`.
    pub fn node_of(&self, rank: usize) -> usize {
        assert!(
            rank < self.max_ranks(),
            "rank {rank} out of range for cluster with {} slots",
            self.max_ranks()
        );
        match self.mapping {
            RankMapping::Cyclic => rank % self.nodes,
            RankMapping::Block => rank / self.cpus_per_node,
        }
    }

    /// Whether two ranks share a physical node (and hence use the
    /// shared-memory path instead of the network).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// NIC bandwidth in bytes per second.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Messages strictly larger than this many bytes use the rendezvous
    /// protocol (transfer starts only once the receive is posted).
    pub fn eager_threshold(&self) -> usize {
        self.eager_threshold
    }

    /// Sender CPU overhead per message.
    pub fn send_overhead(&self) -> SimSpan {
        self.send_overhead
    }

    /// Receiver CPU overhead per message.
    pub fn recv_overhead(&self) -> SimSpan {
        self.recv_overhead
    }

    /// Rack structure, if configured.
    pub fn racks(&self) -> Option<RackParams> {
        self.racks
    }

    /// The rack hosting `rank` (0 when no rack structure is set).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn rack_of(&self, rank: usize) -> usize {
        let node = self.node_of(rank);
        match self.racks {
            Some(r) => node / r.nodes_per_rack,
            None => 0,
        }
    }

    /// Whether `a` and `b` are in the same rack (always true without
    /// rack structure).
    pub fn same_rack(&self, a: usize, b: usize) -> bool {
        self.rack_of(a) == self.rack_of(b)
    }

    /// Sustained uplink bandwidth of one rack in bytes per second
    /// (`None` without rack structure).
    pub fn uplink_bandwidth(&self) -> Option<f64> {
        self.racks
            .map(|r| self.bandwidth * r.nodes_per_rack as f64 / r.oversubscription)
    }

    /// Number of racks (1 without rack structure).
    pub fn rack_count(&self) -> usize {
        match self.racks {
            Some(r) => self.nodes.div_ceil(r.nodes_per_rack),
            None => 1,
        }
    }

    /// Noise configuration.
    pub fn noise(&self) -> NoiseParams {
        self.noise
    }

    /// Time the NIC is busy serializing an `bytes`-byte message
    /// (`bytes / bandwidth + per_msg_gap`), before noise.
    pub fn tx_duration(&self, bytes: usize) -> SimSpan {
        SimSpan::from_secs_f64(bytes as f64 / self.bandwidth) + self.per_msg_gap
    }

    /// One-way network latency between two distinct nodes
    /// (wire + switch hops), excluding CPU overheads and serialization.
    pub fn one_way_latency(&self) -> SimSpan {
        self.wire_latency + self.hop_latency * u64::from(self.switch_hops)
    }

    /// Time to copy an `bytes`-byte message over shared memory
    /// (same-node communication), before noise.
    pub fn shm_duration(&self, bytes: usize) -> SimSpan {
        SimSpan::from_secs_f64(bytes as f64 / self.shm_bandwidth) + self.shm_latency
    }

    /// The injected fault plan ([`FaultPlan::none`] when healthy).
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// A copy of this model with a different noise configuration.
    #[must_use]
    pub fn with_noise(mut self, noise: NoiseParams) -> ClusterModel {
        self.noise = noise;
        self
    }

    /// A copy of this model with an injected fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> ClusterModel {
        self.faults = faults;
        self
    }

    /// A copy of this model with a different rank mapping.
    #[must_use]
    pub fn with_mapping(mut self, mapping: RankMapping) -> ClusterModel {
        self.mapping = mapping;
        self
    }
}

/// Builder for [`ClusterModel`]; see [`ClusterModel::builder`].
#[derive(Debug, Clone)]
pub struct ClusterModelBuilder {
    model: ClusterModel,
}

impl ClusterModelBuilder {
    /// Sets the number of process slots per node.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero.
    pub fn cpus_per_node(mut self, cpus: usize) -> Self {
        assert!(cpus > 0, "a node needs at least one CPU");
        self.model.cpus_per_node = cpus;
        self
    }

    /// Sets the rank→node mapping policy.
    pub fn mapping(mut self, mapping: RankMapping) -> Self {
        self.model.mapping = mapping;
        self
    }

    /// Sets the NIC bandwidth in gigabits per second.
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is not strictly positive and finite.
    pub fn bandwidth_gbps(mut self, gbps: f64) -> Self {
        assert!(
            gbps.is_finite() && gbps > 0.0,
            "bandwidth must be positive, got {gbps}"
        );
        self.model.bandwidth = gbps * 1e9 / 8.0;
        self
    }

    /// Sets the one-way wire latency.
    pub fn wire_latency(mut self, latency: SimSpan) -> Self {
        self.model.wire_latency = latency;
        self
    }

    /// Sets the switch topology: hop count and per-hop latency.
    pub fn switch_hops(mut self, hops: u32, hop_latency: SimSpan) -> Self {
        self.model.switch_hops = hops;
        self.model.hop_latency = hop_latency;
        self
    }

    /// Sets the per-message NIC gap.
    pub fn per_msg_gap(mut self, gap: SimSpan) -> Self {
        self.model.per_msg_gap = gap;
        self
    }

    /// Sets sender and receiver per-message CPU overheads.
    pub fn overheads(mut self, send: SimSpan, recv: SimSpan) -> Self {
        self.model.send_overhead = send;
        self.model.recv_overhead = recv;
        self
    }

    /// Sets the eager/rendezvous protocol threshold in bytes.
    pub fn eager_threshold(mut self, bytes: usize) -> Self {
        self.model.eager_threshold = bytes;
        self
    }

    /// Sets the shared-memory copy bandwidth (bytes/s) and latency.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is not strictly positive and finite.
    pub fn shared_memory(mut self, bandwidth: f64, latency: SimSpan) -> Self {
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "shared-memory bandwidth must be positive, got {bandwidth}"
        );
        self.model.shm_bandwidth = bandwidth;
        self.model.shm_latency = latency;
        self
    }

    /// Groups nodes into racks of `nodes_per_rack` whose uplinks are
    /// oversubscribed by `oversubscription` (≥ 1) and add
    /// `cross_rack_latency` per direction when crossing racks.
    ///
    /// # Panics
    ///
    /// Panics if `nodes_per_rack` is zero or `oversubscription < 1`.
    pub fn racks(
        mut self,
        nodes_per_rack: usize,
        oversubscription: f64,
        cross_rack_latency: SimSpan,
    ) -> Self {
        assert!(nodes_per_rack > 0, "racks need at least one node");
        assert!(
            oversubscription.is_finite() && oversubscription >= 1.0,
            "oversubscription must be >= 1, got {oversubscription}"
        );
        self.model.racks = Some(RackParams {
            nodes_per_rack,
            oversubscription,
            cross_rack_latency,
        });
        self
    }

    /// Sets the noise configuration.
    pub fn noise(mut self, noise: NoiseParams) -> Self {
        self.model.noise = noise;
        self
    }

    /// Sets the injected fault plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.model.faults = faults;
        self
    }

    /// Finishes building the cluster model.
    pub fn build(self) -> ClusterModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grisou_matches_paper_platform() {
        let c = ClusterModel::grisou();
        assert_eq!(c.nodes(), 51);
        assert_eq!(c.cpus_per_node(), 2);
        assert_eq!(c.max_ranks(), 102);
        assert!(c.max_ranks() >= 90, "paper uses up to 90 processes");
        assert!((c.bandwidth() - 1.25e9).abs() < 1.0);
    }

    #[test]
    fn gros_matches_paper_platform() {
        let c = ClusterModel::gros();
        assert_eq!(c.nodes(), 124);
        assert_eq!(c.max_ranks(), 124);
        assert!((c.bandwidth() - 25.0e9 / 8.0).abs() < 1.0);
    }

    #[test]
    fn cyclic_mapping_spreads_ranks() {
        let c = ClusterModel::builder("t", 4).cpus_per_node(2).build();
        assert_eq!(c.node_of(0), 0);
        assert_eq!(c.node_of(3), 3);
        assert_eq!(c.node_of(4), 0);
        assert!(c.same_node(0, 4));
        assert!(!c.same_node(0, 1));
    }

    #[test]
    fn block_mapping_fills_nodes() {
        let c = ClusterModel::builder("t", 4)
            .cpus_per_node(2)
            .mapping(RankMapping::Block)
            .build();
        assert_eq!(c.node_of(0), 0);
        assert_eq!(c.node_of(1), 0);
        assert_eq!(c.node_of(2), 1);
        assert!(c.same_node(0, 1));
        assert!(!c.same_node(1, 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_of_rejects_out_of_range() {
        let c = ClusterModel::builder("t", 2).build();
        let _ = c.node_of(2);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn builder_rejects_zero_nodes() {
        let _ = ClusterModel::builder("t", 0);
    }

    #[test]
    fn tx_duration_scales_with_size() {
        let c = ClusterModel::builder("t", 2)
            .bandwidth_gbps(8.0) // 1 GB/s
            .per_msg_gap(SimSpan::ZERO)
            .build();
        assert_eq!(c.tx_duration(1_000_000), SimSpan::from_millis(1));
        assert_eq!(c.tx_duration(0), SimSpan::ZERO);
    }

    #[test]
    fn one_way_latency_includes_hops() {
        let c = ClusterModel::builder("t", 2)
            .wire_latency(SimSpan::from_micros(10))
            .switch_hops(3, SimSpan::from_micros(2))
            .build();
        assert_eq!(c.one_way_latency(), SimSpan::from_micros(16));
    }

    #[test]
    fn eager_threshold_roundtrip() {
        let c = ClusterModel::builder("t", 2).eager_threshold(4096).build();
        assert_eq!(c.eager_threshold(), 4096);
    }

    #[test]
    fn with_noise_overrides() {
        let c = ClusterModel::grisou().with_noise(NoiseParams::OFF);
        assert!(!c.noise().is_enabled());
    }

    #[test]
    fn shm_faster_than_network_for_presets() {
        for c in [ClusterModel::grisou(), ClusterModel::gros()] {
            let m = 8 * 1024;
            assert!(c.shm_duration(m) < c.tx_duration(m) + c.one_way_latency());
        }
    }
}
