//! Stochastic noise injected into simulated communication times.
//!
//! Real clusters never produce perfectly repeatable timings: OS jitter,
//! adaptive interrupt coalescing and switch buffering perturb every
//! transfer. The paper's measurement methodology (repeat until the sample
//! mean lies in a 95% confidence interval with 2.5% precision) only makes
//! sense against such noise, so the simulator injects a controlled,
//! *seeded* multiplicative jitter on every modelled delay.
//!
//! The jitter factor is log-normal with median 1, i.e. `exp(σ·Z)` for a
//! standard normal `Z`. A log-normal keeps factors positive and produces
//! the mild right skew typical of communication benchmarks.

use collsel_support::rng::StdRng;

/// Configuration of the noise model.
///
/// `sigma` is the standard deviation of the underlying normal in log
/// space; `sigma == 0.0` disables noise entirely and makes every run
/// exactly repeatable regardless of seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseParams {
    /// Log-space standard deviation of the multiplicative jitter.
    pub sigma: f64,
}

impl NoiseParams {
    /// No noise at all; the simulation becomes fully analytic.
    pub const OFF: NoiseParams = NoiseParams { sigma: 0.0 };

    /// Creates a noise configuration.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn new(sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "noise sigma must be finite and non-negative, got {sigma}"
        );
        NoiseParams { sigma }
    }

    /// Whether this configuration produces any jitter.
    pub fn is_enabled(&self) -> bool {
        self.sigma > 0.0
    }
}

impl Default for NoiseParams {
    /// A realistic mild default: about 2% jitter.
    fn default() -> Self {
        NoiseParams { sigma: 0.02 }
    }
}

/// A seeded noise source producing multiplicative jitter factors.
///
/// ```
/// use collsel_netsim::{Noise, NoiseParams};
///
/// let mut a = Noise::new(NoiseParams::new(0.05), 42);
/// let mut b = Noise::new(NoiseParams::new(0.05), 42);
/// assert_eq!(a.factor(), b.factor()); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct Noise {
    params: NoiseParams,
    rng: StdRng,
}

impl Noise {
    /// Creates a noise source from a configuration and a seed.
    pub fn new(params: NoiseParams, seed: u64) -> Self {
        Noise {
            params,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A noise source that always returns factor 1.0.
    pub fn off() -> Self {
        Noise::new(NoiseParams::OFF, 0)
    }

    /// The configuration this source was built with.
    pub fn params(&self) -> NoiseParams {
        self.params
    }

    /// Draws the next jitter factor (always `> 0`, median 1.0).
    pub fn factor(&mut self) -> f64 {
        if !self.params.is_enabled() {
            return 1.0;
        }
        // Box-Muller transform: two uniform draws give one normal
        // deviate without needing a dedicated distributions library.
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.params.sigma * z).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_noise_is_exactly_one() {
        let mut n = Noise::off();
        for _ in 0..100 {
            assert_eq!(n.factor(), 1.0);
        }
    }

    #[test]
    fn zero_sigma_ignores_seed() {
        let mut a = Noise::new(NoiseParams::OFF, 1);
        let mut b = Noise::new(NoiseParams::OFF, 2);
        assert_eq!(a.factor(), b.factor());
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Noise::new(NoiseParams::new(0.1), 7);
        let mut b = Noise::new(NoiseParams::new(0.1), 7);
        for _ in 0..50 {
            assert_eq!(a.factor(), b.factor());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Noise::new(NoiseParams::new(0.1), 7);
        let mut b = Noise::new(NoiseParams::new(0.1), 8);
        let same = (0..20).filter(|_| a.factor() == b.factor()).count();
        assert!(same < 20, "independent seeds should produce distinct draws");
    }

    #[test]
    fn factors_positive_and_centered() {
        let mut n = Noise::new(NoiseParams::new(0.05), 123);
        let draws: Vec<f64> = (0..10_000).map(|_| n.factor()).collect();
        assert!(draws.iter().all(|&f| f > 0.0));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        // E[lognormal(0, 0.05)] = exp(0.05^2 / 2) ~ 1.00125
        assert!(
            (mean - 1.0).abs() < 0.01,
            "mean jitter should be close to 1, got {mean}"
        );
    }

    #[test]
    #[should_panic(expected = "sigma must be finite")]
    fn rejects_negative_sigma() {
        let _ = NoiseParams::new(-0.1);
    }

    #[test]
    fn default_is_mild_and_enabled() {
        let p = NoiseParams::default();
        assert!(p.is_enabled());
        assert!(p.sigma <= 0.05);
    }
}
