//! Virtual time for the discrete-event simulation.
//!
//! The simulator keeps time as an integer number of **nanoseconds** so that
//! event ordering is exact and runs are bit-for-bit reproducible. Two
//! newtypes keep instants and durations apart:
//!
//! * [`SimTime`] — an absolute instant on the virtual clock,
//! * [`SimSpan`] — a length of virtual time.
//!
//! ```
//! use collsel_netsim::{SimSpan, SimTime};
//!
//! let t = SimTime::ZERO + SimSpan::from_micros(3);
//! assert_eq!(t.as_nanos(), 3_000);
//! assert_eq!(t - SimTime::ZERO, SimSpan::from_micros(3));
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of virtual time, in nanoseconds since the start of
/// the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A non-negative span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimSpan(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since the start of the simulation.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The instant expressed in seconds as a floating-point number.
    ///
    /// Use this only at the measurement boundary (statistics, reports);
    /// all internal arithmetic stays in integer nanoseconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// The later of `self` and `other`.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of `self` and `other`.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Span from `earlier` to `self`, saturating to zero if `earlier` is
    /// actually later.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimSpan {
        SimSpan(self.0.saturating_sub(earlier.0))
    }
}

impl SimSpan {
    /// The empty span.
    pub const ZERO: SimSpan = SimSpan(0);

    /// Creates a span from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimSpan(ns)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimSpan(us * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimSpan(ms * 1_000_000)
    }

    /// Creates a span from seconds expressed as a floating-point number,
    /// rounding to the nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "span must be finite and non-negative, got {secs}"
        );
        SimSpan((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span expressed in seconds as a floating-point number.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Multiplies the span by a non-negative floating-point factor,
    /// rounding to the nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[must_use]
    pub fn scale(self, factor: f64) -> SimSpan {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        SimSpan((self.0 as f64 * factor).round() as u64)
    }

    /// The larger of `self` and `other`.
    #[must_use]
    pub fn max(self, other: SimSpan) -> SimSpan {
        SimSpan(self.0.max(other.0))
    }
}

impl Add<SimSpan> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimSpan) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimSpan> for SimTime {
    fn add_assign(&mut self, rhs: SimSpan) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimSpan;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimSpan {
        debug_assert!(self.0 >= rhs.0, "negative span: {self:?} - {rhs:?}");
        SimSpan(self.0 - rhs.0)
    }
}

impl Add for SimSpan {
    type Output = SimSpan;
    fn add(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0 + rhs.0)
    }
}

impl AddAssign for SimSpan {
    fn add_assign(&mut self, rhs: SimSpan) {
        self.0 += rhs.0;
    }
}

impl Sub for SimSpan {
    type Output = SimSpan;
    /// # Panics
    ///
    /// Panics in debug builds on underflow.
    fn sub(self, rhs: SimSpan) -> SimSpan {
        debug_assert!(self.0 >= rhs.0, "negative span: {self:?} - {rhs:?}");
        SimSpan(self.0 - rhs.0)
    }
}

impl SubAssign for SimSpan {
    fn sub_assign(&mut self, rhs: SimSpan) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimSpan {
    type Output = SimSpan;
    fn mul(self, rhs: u64) -> SimSpan {
        SimSpan(self.0 * rhs)
    }
}

impl Div<u64> for SimSpan {
    type Output = SimSpan;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimSpan {
        SimSpan(self.0 / rhs)
    }
}

impl Sum for SimSpan {
    fn sum<I: Iterator<Item = SimSpan>>(iter: I) -> SimSpan {
        iter.fold(SimSpan::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.6}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimSpan::default(), SimSpan::ZERO);
    }

    #[test]
    fn instant_plus_span() {
        let t = SimTime::from_nanos(10) + SimSpan::from_nanos(5);
        assert_eq!(t, SimTime::from_nanos(15));
    }

    #[test]
    fn instant_difference_is_span() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(40);
        assert_eq!(a - b, SimSpan::from_nanos(60));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.saturating_since(b), SimSpan::ZERO);
        assert_eq!(b.saturating_since(a), SimSpan::from_nanos(4));
    }

    #[test]
    fn span_conversions() {
        assert_eq!(SimSpan::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimSpan::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimSpan::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert!((SimSpan::from_nanos(500).as_secs_f64() - 5e-7).abs() < 1e-18);
    }

    #[test]
    fn span_scale_rounds() {
        assert_eq!(SimSpan::from_nanos(10).scale(1.26).as_nanos(), 13);
        assert_eq!(SimSpan::from_nanos(10).scale(0.0), SimSpan::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn span_scale_rejects_negative() {
        let _ = SimSpan::from_nanos(1).scale(-1.0);
    }

    #[test]
    fn span_arithmetic() {
        let s = SimSpan::from_nanos(6) + SimSpan::from_nanos(4);
        assert_eq!(s, SimSpan::from_nanos(10));
        assert_eq!(s - SimSpan::from_nanos(3), SimSpan::from_nanos(7));
        assert_eq!(s * 3, SimSpan::from_nanos(30));
        assert_eq!(s / 4, SimSpan::from_nanos(2));
    }

    #[test]
    fn span_sum() {
        let spans = [1u64, 2, 3].map(SimSpan::from_nanos);
        let total: SimSpan = spans.into_iter().sum();
        assert_eq!(total, SimSpan::from_nanos(6));
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_nanos(3);
        let b = SimTime::from_nanos(7);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            SimSpan::from_nanos(3).max(SimSpan::from_nanos(7)),
            SimSpan::from_nanos(7)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimSpan::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimSpan::from_nanos(1_500).to_string(), "1.500us");
        assert_eq!(SimSpan::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimSpan::from_secs_f64(1.25).to_string(), "1.250000s");
        assert_eq!(SimTime::from_nanos(1_000).to_string(), "0.000001s");
    }
}
