//! Deterministic, seeded **fault injection** for the simulated network.
//!
//! A [`FaultPlan`] describes a set of reproducible pathologies the
//! fabric applies on top of the healthy cluster model:
//!
//! * **degraded links** — a per-node-pair slowdown factor on the
//!   serialization time of every message crossing that pair;
//! * **stragglers** — ranks whose per-message CPU overheads (and
//!   same-node shared-memory copies) are multiplied by a factor > 1,
//!   mimicking an oversubscribed or thermally-throttled host;
//! * **transient delay spikes** — with probability `p` per network
//!   message, an extra latency is added (mimicking OS preemption or
//!   switch buffering bursts);
//! * **scheduled brown-outs** — time windows during which every link
//!   touching a node is slowed down by a factor.
//!
//! All randomness is drawn from the workspace's seeded [`StdRng`], so a
//! faulted run is exactly as replayable as a healthy one: same seed,
//! same cluster, same program ⇒ identical timings, fault effects
//! included. `FaultPlan::none()` is guaranteed **zero-cost**: the fabric
//! consumes no extra random draws and produces bit-identical timings to
//! a build without fault hooks.

use crate::time::{SimSpan, SimTime};
use collsel_support::rng::StdRng;
use std::collections::BTreeMap;
use std::fmt;

/// Default seed used by the canned plan generators and the CLI parser
/// when no explicit seed is given.
pub const DEFAULT_FAULT_SEED: u64 = 0xFA_17;

/// A typed construction error for [`FaultPlan`] builders.
///
/// The fallible `try_with_*` builders return these instead of
/// panicking, so callers assembling plans from untrusted input (CLI
/// flags, config files, fuzzers) can reject nonsense schedules —
/// negative or NaN durations, speed-up "slowdowns", overlapping
/// brown-out windows — with a diagnosable error at build time.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// A degraded link connecting a node to itself.
    SelfLink {
        /// The offending node index.
        node: usize,
    },
    /// A slowdown or multiplier that is not finite or is below 1.
    BadFactor {
        /// Which factor was rejected (e.g. `"link slowdown"`).
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A window duration or start offset that is negative or not finite.
    BadDuration {
        /// Which duration was rejected (e.g. `"brown-out duration"`).
        what: &'static str,
        /// The rejected value, in seconds.
        seconds: f64,
    },
    /// A brown-out window with `start >= end`.
    EmptyWindow {
        /// The affected node.
        node: usize,
        /// Window start.
        start: SimTime,
        /// Window end.
        end: SimTime,
    },
    /// Two brown-out windows on the same node intersect. Overlap is
    /// rejected because stacked windows multiply their slowdowns, which
    /// is almost never what a schedule author intended.
    OverlappingBrownouts {
        /// The node carrying both windows.
        node: usize,
        /// The window already in the plan.
        existing: (SimTime, SimTime),
        /// The window being added.
        added: (SimTime, SimTime),
    },
    /// A spike probability outside `[0, 1]`.
    BadProbability {
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::SelfLink { node } => {
                write!(f, "a link connects two distinct nodes, got {node}-{node}")
            }
            FaultPlanError::BadFactor { what, value } => {
                write!(f, "{what} must be finite and >= 1, got {value}")
            }
            FaultPlanError::BadDuration { what, seconds } => {
                write!(f, "{what} must be finite and non-negative, got {seconds}")
            }
            FaultPlanError::EmptyWindow { node, start, end } => {
                write!(
                    f,
                    "brown-out window is empty on node {node}: [{start}, {end})"
                )
            }
            FaultPlanError::OverlappingBrownouts {
                node,
                existing,
                added,
            } => write!(
                f,
                "overlapping brown-out windows on node {node}: \
                 [{}, {}) intersects existing [{}, {})",
                added.0, added.1, existing.0, existing.1
            ),
            FaultPlanError::BadProbability { value } => {
                write!(f, "spike probability must be in [0, 1], got {value}")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A scheduled brown-out: every link touching `node` is slowed down by
/// `slowdown` during `[start, end)` of virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Brownout {
    /// The affected node (all links touching it degrade).
    pub node: usize,
    /// Start of the window (inclusive).
    pub start: SimTime,
    /// End of the window (exclusive).
    pub end: SimTime,
    /// Multiplicative slowdown (≥ 1) on link serialization time.
    pub slowdown: f64,
}

impl Brownout {
    /// Builds a brown-out window from floating-point seconds, rejecting
    /// negative, NaN or infinite offsets/durations and zero-length
    /// windows with a typed error before any unit conversion happens.
    pub fn try_new(
        node: usize,
        start_secs: f64,
        duration_secs: f64,
        slowdown: f64,
    ) -> Result<Brownout, FaultPlanError> {
        if !start_secs.is_finite() || start_secs < 0.0 {
            return Err(FaultPlanError::BadDuration {
                what: "brown-out start",
                seconds: start_secs,
            });
        }
        if !duration_secs.is_finite() || duration_secs < 0.0 {
            return Err(FaultPlanError::BadDuration {
                what: "brown-out duration",
                seconds: duration_secs,
            });
        }
        if !slowdown.is_finite() || slowdown < 1.0 {
            return Err(FaultPlanError::BadFactor {
                what: "brown-out slowdown",
                value: slowdown,
            });
        }
        let start = SimTime::ZERO + SimSpan::from_secs_f64(start_secs);
        let end = start + SimSpan::from_secs_f64(duration_secs);
        if start >= end {
            return Err(FaultPlanError::EmptyWindow { node, start, end });
        }
        Ok(Brownout {
            node,
            start,
            end,
            slowdown,
        })
    }

    /// Panicking twin of [`try_new`](Self::try_new), for statically
    /// known windows (the same pattern as the [`FaultPlan`] `with_*`
    /// builders).
    ///
    /// # Panics
    ///
    /// Panics where `try_new` would return an error.
    pub fn new(node: usize, start_secs: f64, duration_secs: f64, slowdown: f64) -> Brownout {
        Self::try_new(node, start_secs, duration_secs, slowdown).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Transient delay-spike configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpikeParams {
    /// Per-network-message probability of a spike, in `[0, 1]`.
    pub probability: f64,
    /// Extra one-way latency added when a spike fires.
    pub extra_latency: SimSpan,
}

/// A deterministic, seeded fault-injection plan.
///
/// Attach a plan to a cluster with
/// [`ClusterModel::with_faults`](crate::ClusterModel::with_faults) (or
/// the builder's `faults` method); the [`Fabric`](crate::Fabric)
/// consults it on every transfer.
///
/// Degraded links and brown-outs are keyed by **node** index; straggler
/// multipliers are keyed by **rank** (the paper's measurement loops are
/// per-rank, and one node may host several ranks).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    degraded_links: BTreeMap<(usize, usize), f64>,
    stragglers: BTreeMap<usize, f64>,
    brownouts: Vec<Brownout>,
    spikes: Option<SpikeParams>,
    seed: u64,
}

impl FaultPlan {
    /// The empty plan: no faults, zero cost, bit-identical timings to a
    /// fabric without fault hooks.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether this plan injects no faults at all.
    pub fn is_none(&self) -> bool {
        self.degraded_links.is_empty()
            && self.stragglers.is_empty()
            && self.brownouts.is_empty()
            && self.spikes.is_none()
    }

    /// Seed for the transient-spike stream (mixed with the run seed).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Adds a degraded link between nodes `a` and `b` (undirected),
    /// rejecting self-links and non-finite or sub-1 slowdowns.
    pub fn try_with_degraded_link(
        mut self,
        a: usize,
        b: usize,
        slowdown: f64,
    ) -> Result<FaultPlan, FaultPlanError> {
        if a == b {
            return Err(FaultPlanError::SelfLink { node: a });
        }
        if !slowdown.is_finite() || slowdown < 1.0 {
            return Err(FaultPlanError::BadFactor {
                what: "link slowdown",
                value: slowdown,
            });
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        self.degraded_links.insert(key, slowdown);
        Ok(self)
    }

    /// Adds a degraded link between nodes `a` and `b` (undirected).
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or `slowdown` is not finite and ≥ 1; see
    /// [`try_with_degraded_link`](Self::try_with_degraded_link).
    #[must_use]
    pub fn with_degraded_link(self, a: usize, b: usize, slowdown: f64) -> FaultPlan {
        self.try_with_degraded_link(a, b, slowdown)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Marks `rank` as a straggler, rejecting non-finite or sub-1
    /// multipliers.
    pub fn try_with_straggler(
        mut self,
        rank: usize,
        multiplier: f64,
    ) -> Result<FaultPlan, FaultPlanError> {
        if !multiplier.is_finite() || multiplier < 1.0 {
            return Err(FaultPlanError::BadFactor {
                what: "straggler multiplier",
                value: multiplier,
            });
        }
        self.stragglers.insert(rank, multiplier);
        Ok(self)
    }

    /// Marks `rank` as a straggler whose CPU overheads are multiplied
    /// by `multiplier`.
    ///
    /// # Panics
    ///
    /// Panics if `multiplier` is not finite and ≥ 1; see
    /// [`try_with_straggler`](Self::try_with_straggler).
    #[must_use]
    pub fn with_straggler(self, rank: usize, multiplier: f64) -> FaultPlan {
        self.try_with_straggler(rank, multiplier)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Adds a scheduled brown-out window, rejecting empty windows,
    /// non-finite or sub-1 slowdowns, and windows that overlap an
    /// existing window **on the same node** (stacked windows multiply
    /// their slowdowns, which is almost never intended).
    pub fn try_with_brownout(mut self, brownout: Brownout) -> Result<FaultPlan, FaultPlanError> {
        if brownout.start >= brownout.end {
            return Err(FaultPlanError::EmptyWindow {
                node: brownout.node,
                start: brownout.start,
                end: brownout.end,
            });
        }
        if !brownout.slowdown.is_finite() || brownout.slowdown < 1.0 {
            return Err(FaultPlanError::BadFactor {
                what: "brown-out slowdown",
                value: brownout.slowdown,
            });
        }
        if let Some(clash) = self
            .brownouts
            .iter()
            .find(|b| b.node == brownout.node && b.start < brownout.end && brownout.start < b.end)
        {
            return Err(FaultPlanError::OverlappingBrownouts {
                node: brownout.node,
                existing: (clash.start, clash.end),
                added: (brownout.start, brownout.end),
            });
        }
        self.brownouts.push(brownout);
        Ok(self)
    }

    /// Adds a scheduled brown-out window.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty, overlaps an existing window on
    /// the same node, or `slowdown` is not finite and ≥ 1; see
    /// [`try_with_brownout`](Self::try_with_brownout).
    #[must_use]
    pub fn with_brownout(self, brownout: Brownout) -> FaultPlan {
        self.try_with_brownout(brownout)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Enables transient delay spikes, rejecting probabilities outside
    /// `[0, 1]`.
    pub fn try_with_spikes(
        mut self,
        probability: f64,
        extra_latency: SimSpan,
    ) -> Result<FaultPlan, FaultPlanError> {
        if !(0.0..=1.0).contains(&probability) {
            return Err(FaultPlanError::BadProbability { value: probability });
        }
        self.spikes = Some(SpikeParams {
            probability,
            extra_latency,
        });
        Ok(self)
    }

    /// Enables transient delay spikes.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is not in `[0, 1]`; see
    /// [`try_with_spikes`](Self::try_with_spikes).
    #[must_use]
    pub fn with_spikes(self, probability: f64, extra_latency: SimSpan) -> FaultPlan {
        self.try_with_spikes(probability, extra_latency)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Sets the seed mixed into the transient-spike stream.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// Canned plan: `count` randomly chosen node pairs degraded by a
    /// slowdown drawn uniformly from `[2, max_slowdown]`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2` or `max_slowdown < 2`.
    pub fn degraded_links(nodes: usize, count: usize, max_slowdown: f64, seed: u64) -> FaultPlan {
        assert!(nodes >= 2, "degraded links need at least two nodes");
        assert!(
            max_slowdown.is_finite() && max_slowdown >= 2.0,
            "max slowdown must be finite and >= 2, got {max_slowdown}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::none().with_seed(seed);
        let target = count.min(nodes * (nodes - 1) / 2);
        while plan.degraded_links.len() < target {
            let a = rng.gen_range(0..nodes);
            let b = rng.gen_range(0..nodes);
            if a == b {
                continue;
            }
            let slowdown = rng.gen_range(2.0..max_slowdown.max(2.0000001));
            plan = plan.with_degraded_link(a, b, slowdown);
        }
        plan
    }

    /// Canned plan: `count` randomly chosen straggler ranks (out of
    /// `ranks`) with CPU multipliers drawn uniformly from
    /// `[2, max_multiplier]`.
    ///
    /// # Panics
    ///
    /// Panics if `ranks` is zero or `max_multiplier < 2`.
    pub fn stragglers(ranks: usize, count: usize, max_multiplier: f64, seed: u64) -> FaultPlan {
        assert!(ranks > 0, "stragglers need at least one rank");
        assert!(
            max_multiplier.is_finite() && max_multiplier >= 2.0,
            "max multiplier must be finite and >= 2, got {max_multiplier}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::none().with_seed(seed);
        let target = count.min(ranks);
        while plan.stragglers.len() < target {
            let rank = rng.gen_range(0..ranks);
            let multiplier = rng.gen_range(2.0..max_multiplier.max(2.0000001));
            plan = plan.with_straggler(rank, multiplier);
        }
        plan
    }

    /// Canned plan: `count` brown-out windows on randomly chosen nodes.
    /// Each window starts in `[0, horizon)` and lasts `duration`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero, `horizon` or `duration` is zero, or
    /// `slowdown < 1`.
    pub fn brownouts(
        nodes: usize,
        count: usize,
        horizon: SimSpan,
        duration: SimSpan,
        slowdown: f64,
        seed: u64,
    ) -> FaultPlan {
        assert!(nodes > 0, "brown-outs need at least one node");
        assert!(
            horizon > SimSpan::ZERO && duration > SimSpan::ZERO,
            "brown-out horizon and duration must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::none().with_seed(seed);
        let mut placed = 0;
        // Windows that would overlap an existing same-node window are
        // re-drawn (bounded, so a schedule that cannot fit `count`
        // disjoint windows still terminates with fewer of them).
        let mut attempts = 0;
        while placed < count && attempts < count.saturating_mul(64).max(64) {
            attempts += 1;
            let node = rng.gen_range(0..nodes);
            let start = SimTime::ZERO + SimSpan::from_nanos(rng.gen_range(0..horizon.as_nanos()));
            match plan.clone().try_with_brownout(Brownout {
                node,
                start,
                end: start + duration,
                slowdown,
            }) {
                Ok(updated) => {
                    plan = updated;
                    placed += 1;
                }
                Err(FaultPlanError::OverlappingBrownouts { .. }) => continue,
                Err(e) => panic!("{e}"),
            }
        }
        plan
    }

    /// Parses a CLI fault specification into a canned plan scaled to a
    /// cluster with `nodes` nodes.
    ///
    /// Grammar: `NAME` or `NAME:SEED`, where `NAME` is one of `none`,
    /// `degraded-link`, `straggler`, `brownout`, `spike`, `chaos` and
    /// `SEED` is a decimal `u64` (default [`DEFAULT_FAULT_SEED`]).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for an unknown name or a
    /// malformed seed.
    pub fn parse(spec: &str, nodes: usize) -> Result<FaultPlan, String> {
        let (name, seed) = match spec.split_once(':') {
            Some((name, seed)) => (
                name,
                seed.parse::<u64>()
                    .map_err(|_| format!("bad fault seed {seed:?} in {spec:?}"))?,
            ),
            None => (spec, DEFAULT_FAULT_SEED),
        };
        let link_count = (nodes / 8).max(1);
        let straggler_count = (nodes / 16).max(1);
        match name {
            "none" => Ok(FaultPlan::none()),
            "degraded-link" => Ok(FaultPlan::degraded_links(
                nodes.max(2),
                link_count,
                8.0,
                seed,
            )),
            "straggler" => Ok(FaultPlan::stragglers(nodes, straggler_count, 16.0, seed)),
            "brownout" => Ok(FaultPlan::brownouts(
                nodes,
                2,
                SimSpan::from_micros(200),
                SimSpan::from_millis(2),
                10.0,
                seed,
            )),
            "spike" => Ok(FaultPlan::none()
                .with_seed(seed)
                .with_spikes(0.05, SimSpan::from_micros(500))),
            "chaos" => Ok(
                FaultPlan::degraded_links(nodes.max(2), link_count, 4.0, seed)
                    .merge(FaultPlan::stragglers(
                        nodes,
                        straggler_count,
                        8.0,
                        seed ^ 0x5EED,
                    ))
                    .with_spikes(0.02, SimSpan::from_micros(200)),
            ),
            other => Err(format!(
                "unknown fault plan {other:?}; expected one of \
                 none, degraded-link, straggler, brownout, spike, chaos \
                 (optionally suffixed with :SEED)"
            )),
        }
    }

    /// Combines two plans (the other plan's entries win on key clashes;
    /// spike settings are taken from `other` when present). Incoming
    /// brown-out windows that would overlap an existing same-node
    /// window are dropped, preserving the no-overlap invariant.
    #[must_use]
    pub fn merge(mut self, other: FaultPlan) -> FaultPlan {
        self.degraded_links.extend(other.degraded_links);
        self.stragglers.extend(other.stragglers);
        for bo in other.brownouts {
            if let Ok(updated) = self.clone().try_with_brownout(bo) {
                self = updated;
            }
        }
        if other.spikes.is_some() {
            self.spikes = other.spikes;
        }
        self
    }

    /// Combined slowdown factor (≥ 1) for a transfer between nodes `a`
    /// and `b` whose serialization starts at `at`: the degraded-link
    /// factor of the pair times every active brown-out touching either
    /// endpoint.
    pub fn link_factor(&self, a: usize, b: usize, at: SimTime) -> f64 {
        let key = if a <= b { (a, b) } else { (b, a) };
        let mut factor = self.degraded_links.get(&key).copied().unwrap_or(1.0);
        for bo in &self.brownouts {
            if (bo.node == a || bo.node == b) && at >= bo.start && at < bo.end {
                factor *= bo.slowdown;
            }
        }
        factor
    }

    /// CPU-overhead multiplier (≥ 1) for `rank` (1.0 for non-stragglers).
    pub fn cpu_factor(&self, rank: usize) -> f64 {
        self.stragglers.get(&rank).copied().unwrap_or(1.0)
    }

    /// Transient-spike configuration, if enabled.
    pub fn spike_params(&self) -> Option<SpikeParams> {
        self.spikes
    }

    /// Number of degraded links.
    pub fn degraded_link_count(&self) -> usize {
        self.degraded_links.len()
    }

    /// Number of straggler ranks.
    pub fn straggler_count(&self) -> usize {
        self.stragglers.len()
    }

    /// The brown-out windows.
    pub fn brownout_windows(&self) -> &[Brownout] {
        &self.brownouts
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return write!(f, "no faults");
        }
        let mut parts = Vec::new();
        if !self.degraded_links.is_empty() {
            parts.push(format!("{} degraded link(s)", self.degraded_links.len()));
        }
        if !self.stragglers.is_empty() {
            parts.push(format!("{} straggler(s)", self.stragglers.len()));
        }
        if !self.brownouts.is_empty() {
            parts.push(format!("{} brown-out(s)", self.brownouts.len()));
        }
        if let Some(sp) = self.spikes {
            parts.push(format!("spikes p={} +{}", sp.probability, sp.extra_latency));
        }
        write!(f, "{}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_empty_and_neutral() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        assert_eq!(plan.link_factor(0, 1, SimTime::ZERO), 1.0);
        assert_eq!(plan.cpu_factor(3), 1.0);
        assert!(plan.spike_params().is_none());
        assert_eq!(plan.to_string(), "no faults");
    }

    #[test]
    fn degraded_link_is_undirected() {
        let plan = FaultPlan::none().with_degraded_link(2, 5, 3.0);
        assert_eq!(plan.link_factor(2, 5, SimTime::ZERO), 3.0);
        assert_eq!(plan.link_factor(5, 2, SimTime::ZERO), 3.0);
        assert_eq!(plan.link_factor(2, 4, SimTime::ZERO), 1.0);
    }

    #[test]
    fn brownout_applies_only_inside_window() {
        let plan = FaultPlan::none().with_brownout(Brownout {
            node: 1,
            start: SimTime::from_nanos(100),
            end: SimTime::from_nanos(200),
            slowdown: 10.0,
        });
        assert_eq!(plan.link_factor(0, 1, SimTime::from_nanos(50)), 1.0);
        assert_eq!(plan.link_factor(0, 1, SimTime::from_nanos(150)), 10.0);
        assert_eq!(plan.link_factor(1, 3, SimTime::from_nanos(199)), 10.0);
        assert_eq!(plan.link_factor(0, 1, SimTime::from_nanos(200)), 1.0);
        assert_eq!(plan.link_factor(0, 2, SimTime::from_nanos(150)), 1.0);
    }

    #[test]
    fn brownout_stacks_with_degraded_link() {
        let plan = FaultPlan::none()
            .with_degraded_link(0, 1, 2.0)
            .with_brownout(Brownout {
                node: 0,
                start: SimTime::ZERO,
                end: SimTime::from_nanos(10),
                slowdown: 3.0,
            });
        assert_eq!(plan.link_factor(0, 1, SimTime::ZERO), 6.0);
    }

    #[test]
    fn straggler_multiplies_cpu() {
        let plan = FaultPlan::none().with_straggler(4, 7.5);
        assert_eq!(plan.cpu_factor(4), 7.5);
        assert_eq!(plan.cpu_factor(5), 1.0);
        assert!(!plan.is_none());
    }

    #[test]
    fn canned_generators_are_seed_deterministic() {
        for seed in [0u64, 42, 0xDEAD] {
            let a = FaultPlan::degraded_links(16, 3, 8.0, seed);
            let b = FaultPlan::degraded_links(16, 3, 8.0, seed);
            assert_eq!(a, b);
            assert_eq!(a.degraded_link_count(), 3);
            let a = FaultPlan::stragglers(16, 3, 8.0, seed);
            let b = FaultPlan::stragglers(16, 3, 8.0, seed);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn parse_accepts_known_names_and_seeds() {
        assert!(FaultPlan::parse("none", 8).unwrap().is_none());
        let a = FaultPlan::parse("degraded-link", 16).unwrap();
        let b = FaultPlan::parse("degraded-link:64791", 16).unwrap();
        assert!(!a.is_none() && !b.is_none());
        assert_ne!(a, b, "different seeds should give different plans");
        assert_eq!(a, FaultPlan::parse("degraded-link", 16).unwrap());
        let chaos = FaultPlan::parse("chaos:9", 32).unwrap();
        assert!(chaos.degraded_link_count() > 0);
        assert!(chaos.straggler_count() > 0);
        assert!(chaos.spike_params().is_some());
    }

    #[test]
    fn parse_rejects_unknown_and_malformed() {
        assert!(FaultPlan::parse("meteor-strike", 8).is_err());
        assert!(FaultPlan::parse("straggler:not-a-seed", 8).is_err());
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn rejects_speedup_links() {
        let _ = FaultPlan::none().with_degraded_link(0, 1, 0.5);
    }

    #[test]
    #[should_panic(expected = "window is empty")]
    fn rejects_empty_brownout() {
        let _ = FaultPlan::none().with_brownout(Brownout {
            node: 0,
            start: SimTime::from_nanos(5),
            end: SimTime::from_nanos(5),
            slowdown: 2.0,
        });
    }

    #[test]
    fn try_builders_return_typed_errors() {
        assert_eq!(
            FaultPlan::none().try_with_degraded_link(3, 3, 2.0),
            Err(FaultPlanError::SelfLink { node: 3 })
        );
        assert!(matches!(
            FaultPlan::none().try_with_degraded_link(0, 1, f64::NAN),
            Err(FaultPlanError::BadFactor {
                what: "link slowdown",
                ..
            })
        ));
        assert!(matches!(
            FaultPlan::none().try_with_straggler(0, 0.25),
            Err(FaultPlanError::BadFactor {
                what: "straggler multiplier",
                ..
            })
        ));
        assert!(matches!(
            FaultPlan::none().try_with_spikes(1.5, SimSpan::from_micros(1)),
            Err(FaultPlanError::BadProbability { .. })
        ));
    }

    #[test]
    fn brownout_try_new_rejects_negative_and_nan_durations() {
        assert!(matches!(
            Brownout::try_new(0, -1.0, 2.0, 3.0),
            Err(FaultPlanError::BadDuration {
                what: "brown-out start",
                ..
            })
        ));
        assert!(matches!(
            Brownout::try_new(0, 0.0, f64::NAN, 3.0),
            Err(FaultPlanError::BadDuration {
                what: "brown-out duration",
                ..
            })
        ));
        assert!(matches!(
            Brownout::try_new(0, 0.0, 0.0, 3.0),
            Err(FaultPlanError::EmptyWindow { .. })
        ));
        assert!(matches!(
            Brownout::try_new(0, 0.0, 1.0, 0.5),
            Err(FaultPlanError::BadFactor { .. })
        ));
        let ok = Brownout::try_new(2, 0.001, 0.002, 4.0).unwrap();
        assert_eq!(ok.node, 2);
        assert_eq!(ok.start, SimTime::from_nanos(1_000_000));
        assert_eq!(ok.end, SimTime::from_nanos(3_000_000));
    }

    #[test]
    fn overlapping_brownouts_rejected_same_node_only() {
        let base = FaultPlan::none()
            .try_with_brownout(Brownout::try_new(1, 0.0, 0.010, 2.0).unwrap())
            .unwrap();
        // Same node, intersecting window: typed rejection.
        let err = base
            .clone()
            .try_with_brownout(Brownout::try_new(1, 0.005, 0.010, 2.0).unwrap())
            .unwrap_err();
        assert!(matches!(
            err,
            FaultPlanError::OverlappingBrownouts { node: 1, .. }
        ));
        assert!(err.to_string().contains("overlapping brown-out"));
        // Different node, same window: fine.
        assert!(base
            .clone()
            .try_with_brownout(Brownout::try_new(2, 0.005, 0.010, 2.0).unwrap())
            .is_ok());
        // Same node, adjacent (end-exclusive) window: fine.
        assert!(base
            .try_with_brownout(Brownout::try_new(1, 0.010, 0.010, 2.0).unwrap())
            .is_ok());
    }

    #[test]
    #[should_panic(expected = "overlapping brown-out")]
    fn panicking_builder_rejects_overlap_too() {
        let _ = FaultPlan::none()
            .with_brownout(Brownout::try_new(0, 0.0, 0.010, 2.0).unwrap())
            .with_brownout(Brownout::try_new(0, 0.001, 0.001, 2.0).unwrap());
    }

    #[test]
    fn canned_brownouts_never_overlap() {
        for seed in [0u64, 7, 42, 0xFA_17] {
            let plan = FaultPlan::brownouts(
                4,
                8,
                SimSpan::from_millis(100),
                SimSpan::from_millis(10),
                4.0,
                seed,
            );
            let windows = plan.brownout_windows();
            for (i, a) in windows.iter().enumerate() {
                for b in &windows[i + 1..] {
                    assert!(
                        a.node != b.node || a.end <= b.start || b.end <= a.start,
                        "seed {seed}: overlapping windows {a:?} / {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn merge_drops_overlapping_incoming_windows() {
        let a = FaultPlan::none()
            .try_with_brownout(Brownout::try_new(0, 0.0, 0.010, 2.0).unwrap())
            .unwrap();
        let b = FaultPlan::none()
            .try_with_brownout(Brownout::try_new(0, 0.005, 0.010, 3.0).unwrap())
            .unwrap()
            .try_with_brownout(Brownout::try_new(1, 0.0, 0.010, 3.0).unwrap())
            .unwrap();
        let merged = a.merge(b);
        assert_eq!(merged.brownout_windows().len(), 2);
        assert!(merged
            .brownout_windows()
            .iter()
            .all(|w| w.slowdown == 2.0 || w.node == 1));
    }
}
