//! The dynamic side of the network: per-NIC occupancy and transfer planning.
//!
//! [`Fabric`] owns the mutable state of a cluster's network during one
//! simulation run: when each node's transmit and receive NIC side becomes
//! free, plus the seeded noise stream. Given a source rank, destination
//! rank, message size and the virtual time at which the payload is ready
//! to leave the sender, [`Fabric::plan_transfer`] computes the full
//! timeline of the transfer and updates NIC occupancy.
//!
//! The model is deliberately richer than the Hockney model the analytical
//! layer fits on top of it:
//!
//! * each node's NIC is **full duplex**: the transmit and receive sides
//!   serialize independently, so concurrent outgoing messages from one
//!   node queue behind each other (this is what makes the non-blocking
//!   linear broadcast slower than a single point-to-point transfer and
//!   gives rise to the paper's γ(P) > 1);
//! * co-located ranks (same physical node) bypass the network entirely and
//!   use a shared-memory copy;
//! * every duration is perturbed by the seeded multiplicative noise.
//!
//! Eager/rendezvous protocol selection is a *runtime* concern: the MPI
//! layer decides when a transfer may start; the fabric only reports the
//! threshold via [`ClusterModel::eager_threshold`].

use crate::cluster::ClusterModel;
use crate::fault::FaultPlan;
use crate::noise::Noise;
use crate::time::{SimSpan, SimTime};
use crate::trace::TransferRecord;
use collsel_support::rng::StdRng;

/// Occupancy of one node's NIC (full duplex: independent sides).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct NicState {
    tx_free: SimTime,
    rx_free: SimTime,
}

/// Rate-limiter state of one rack's oversubscribed uplink (cut-through:
/// an uncontended message is not delayed; under contention messages
/// exit one uplink-serialization apart).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct RackPipes {
    up_exit: SimTime,
    down_exit: SimTime,
}

/// The computed timeline of a single message transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferPlan {
    /// When the first byte leaves the sender NIC (after queueing).
    pub wire_start: SimTime,
    /// When the sender-side resources are released; a send request
    /// (`MPI_Isend`) completes at this time.
    pub send_done: SimTime,
    /// When the last byte has been written into the receiver's buffer;
    /// the matching receive completes at this time plus the receiver CPU
    /// overhead (charged by the MPI layer).
    pub delivered: SimTime,
}

/// Aggregate transfer counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Number of planned transfers (network and shared-memory).
    pub messages: u64,
    /// Total payload bytes moved.
    pub bytes: u64,
    /// Transfers that used the shared-memory path.
    pub shm_messages: u64,
}

/// Dynamic network state for one simulation run.
#[derive(Debug, Clone)]
pub struct Fabric {
    cluster: ClusterModel,
    nics: Vec<NicState>,
    racks: Vec<RackPipes>,
    noise: Noise,
    /// The injected fault plan (cloned out of the cluster model).
    faults: FaultPlan,
    /// Dedicated stream for transient delay spikes, kept separate from
    /// the noise stream so enabling/disabling spikes never shifts the
    /// jitter sequence of everything else.
    spike_rng: StdRng,
    stats: FabricStats,
    trace: Option<Vec<TransferRecord>>,
}

impl Fabric {
    /// Creates a fabric for `cluster`, with the noise stream seeded by
    /// `seed`.
    pub fn new(cluster: ClusterModel, seed: u64) -> Self {
        let nics = vec![NicState::default(); cluster.nodes()];
        let racks = vec![RackPipes::default(); cluster.rack_count()];
        let noise = Noise::new(cluster.noise(), seed);
        let faults = cluster.faults().clone();
        let spike_rng = StdRng::seed_from_u64(seed ^ faults.seed().rotate_left(17));
        Fabric {
            cluster,
            nics,
            racks,
            noise,
            faults,
            spike_rng,
            stats: FabricStats::default(),
            trace: None,
        }
    }

    /// Restores the fabric to the state a fresh
    /// [`new`](Fabric::new)`(cluster, seed)` would have — NIC and rack
    /// occupancy cleared, counters zeroed, the noise and spike streams
    /// reseeded — without re-cloning the cluster model.
    ///
    /// Batched evaluators (see `collsel-mpi`'s timing-DAG backend) run
    /// thousands of repetitions against one cluster; resetting in place
    /// removes the per-repetition model clone from the hot loop while
    /// staying bit-identical to constructing a new fabric. Tracing
    /// enablement is preserved; any recorded trace is discarded.
    pub fn reset(&mut self, seed: u64) {
        self.nics.iter_mut().for_each(|n| *n = NicState::default());
        self.racks
            .iter_mut()
            .for_each(|r| *r = RackPipes::default());
        self.noise = Noise::new(self.cluster.noise(), seed);
        self.spike_rng = StdRng::seed_from_u64(seed ^ self.faults.seed().rotate_left(17));
        self.stats = FabricStats::default();
        if let Some(t) = &mut self.trace {
            t.clear();
        }
    }

    /// Starts recording a [`TransferRecord`] per planned transfer
    /// (see [`crate::trace`]). Idempotent.
    pub fn enable_tracing(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// Stops recording transfers and drops any recorded trace.
    pub fn disable_tracing(&mut self) {
        self.trace = None;
    }

    /// Takes the recorded trace, leaving recording enabled with an
    /// empty buffer. Returns an empty vector when tracing is off.
    pub fn take_trace(&mut self) -> Vec<TransferRecord> {
        match &mut self.trace {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    /// The static cluster description.
    pub fn cluster(&self) -> &ClusterModel {
        &self.cluster
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// One-way latency for small control messages (rendezvous
    /// ready-to-send / clear-to-send); these do not occupy the NIC.
    pub fn control_latency(&self) -> SimSpan {
        self.cluster.one_way_latency()
    }

    /// The injected fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Sender CPU overhead per message for `rank`, including any
    /// straggler multiplier from the fault plan.
    pub fn send_overhead(&self, rank: usize) -> SimSpan {
        Self::scale_overhead(self.cluster.send_overhead(), self.faults.cpu_factor(rank))
    }

    /// Receiver CPU overhead per message for `rank`, including any
    /// straggler multiplier from the fault plan.
    pub fn recv_overhead(&self, rank: usize) -> SimSpan {
        Self::scale_overhead(self.cluster.recv_overhead(), self.faults.cpu_factor(rank))
    }

    /// Applies a straggler factor to a base overhead; factor 1.0 returns
    /// the base span untouched so the healthy path stays bit-identical.
    fn scale_overhead(base: SimSpan, factor: f64) -> SimSpan {
        if factor == 1.0 {
            base
        } else {
            base.scale(factor)
        }
    }

    /// Plans the transfer of `bytes` payload bytes from `src` to `dst`
    /// (ranks), where the payload is ready to leave the sender at
    /// `ready`, and updates NIC occupancy.
    ///
    /// `ready` must already include the sender's CPU overhead; the
    /// returned [`TransferPlan::delivered`] excludes the receiver CPU
    /// overhead. Both overheads are charged by the MPI layer because they
    /// occupy the *process*, not the NIC.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range for the cluster.
    pub fn plan_transfer(
        &mut self,
        src: usize,
        dst: usize,
        bytes: usize,
        ready: SimTime,
    ) -> TransferPlan {
        self.stats.messages += 1;
        self.stats.bytes += bytes as u64;

        let src_node = self.cluster.node_of(src);
        let dst_node = self.cluster.node_of(dst);

        if src_node == dst_node {
            // Shared-memory path: a single copy, no NIC involvement. A
            // straggler's copy loop runs on its slowed CPU.
            self.stats.shm_messages += 1;
            let mut factor = self.noise.factor();
            if !self.faults.is_none() {
                factor *= self.faults.cpu_factor(src);
            }
            let dur = self.cluster.shm_duration(bytes).scale(factor);
            let delivered = ready + dur;
            let plan = TransferPlan {
                wire_start: ready,
                send_done: delivered,
                delivered,
            };
            self.record(src, dst, bytes, ready, plan, true);
            return plan;
        }

        // Fault hooks: a degraded link or an active brown-out stretches
        // the serialization time; a transient spike adds latency. With
        // `FaultPlan::none()` no extra factor is applied and no extra
        // random draw happens, so healthy timings stay bit-identical.
        let mut factor = self.noise.factor();
        if !self.faults.is_none() {
            factor *= self.faults.link_factor(src_node, dst_node, ready);
        }
        let dur = self.cluster.tx_duration(bytes).scale(factor);
        let mut latency = self.cluster.one_way_latency();
        if let Some(spikes) = self.faults.spike_params() {
            if self.spike_rng.next_f64() < spikes.probability {
                latency += spikes.extra_latency;
            }
        }

        // Transmit side: queue behind earlier messages from this node.
        let wire_start = ready.max(self.nics[src_node].tx_free);
        let tx_done = wire_start + dur;
        self.nics[src_node].tx_free = tx_done;

        // Rack uplinks (cut-through rate limiters): crossing racks must
        // pass the source rack's up pipe and the destination rack's
        // down pipe; an uncontended message is not delayed beyond the
        // extra cross-rack latency, but concurrent cross-rack flows
        // share the oversubscribed uplink bandwidth.
        let mut gate = wire_start;
        let src_rack = self.cluster.rack_of(src);
        let dst_rack = self.cluster.rack_of(dst);
        if src_rack != dst_rack {
            let racks = self
                .cluster
                .racks()
                .expect("distinct racks imply rack structure");
            let up_bw = self
                .cluster
                .uplink_bandwidth()
                .expect("rack structure has an uplink bandwidth");
            let dur_up = SimSpan::from_secs_f64(bytes as f64 / up_bw);
            latency += racks.cross_rack_latency * 2;
            let up = &mut self.racks[src_rack].up_exit;
            gate = (*up + dur_up).max(gate);
            *up = gate;
            let down = &mut self.racks[dst_rack].down_exit;
            gate = (*down + dur_up).max(gate);
            *down = gate;
        }

        // Receive side: the message's head arrives after the wire latency;
        // if the receive side is still draining an earlier message the
        // stream is buffered upstream and serialized after it.
        let head_arrival = gate + latency;
        let rx_start = head_arrival.max(self.nics[dst_node].rx_free);
        let delivered = rx_start + dur;
        self.nics[dst_node].rx_free = delivered;

        let plan = TransferPlan {
            wire_start,
            send_done: tx_done,
            delivered,
        };
        self.record(src, dst, bytes, ready, plan, false);
        plan
    }

    fn record(
        &mut self,
        src: usize,
        dst: usize,
        bytes: usize,
        ready: SimTime,
        plan: TransferPlan,
        shm: bool,
    ) {
        if let Some(trace) = &mut self.trace {
            trace.push(TransferRecord {
                src,
                dst,
                bytes,
                ready,
                wire_start: plan.wire_start,
                send_done: plan.send_done,
                delivered: plan.delivered,
                shm,
            });
        }
    }

    /// Resets NIC occupancy and counters, keeping the noise stream
    /// position (so repeated experiments in one run see fresh queues but
    /// independent jitter).
    pub fn reset_occupancy(&mut self) {
        for nic in &mut self.nics {
            *nic = NicState::default();
        }
        for rack in &mut self.racks {
            *rack = RackPipes::default();
        }
        self.stats = FabricStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterModel;
    use crate::noise::NoiseParams;
    use crate::time::{SimSpan, SimTime};

    fn quiet_cluster() -> ClusterModel {
        ClusterModel::builder("t", 8)
            .bandwidth_gbps(8.0) // 1 GB/s => 1 ns/byte
            .wire_latency(SimSpan::from_micros(10))
            .switch_hops(0, SimSpan::ZERO)
            .per_msg_gap(SimSpan::ZERO)
            .overheads(SimSpan::ZERO, SimSpan::ZERO)
            .noise(NoiseParams::OFF)
            .build()
    }

    #[test]
    fn single_transfer_is_latency_plus_serialization() {
        let mut f = Fabric::new(quiet_cluster(), 0);
        let plan = f.plan_transfer(0, 1, 1000, SimTime::ZERO);
        assert_eq!(plan.wire_start, SimTime::ZERO);
        assert_eq!(plan.send_done, SimTime::from_nanos(1_000));
        assert_eq!(plan.delivered, SimTime::from_nanos(11_000));
    }

    #[test]
    fn concurrent_sends_serialize_on_tx_nic() {
        let mut f = Fabric::new(quiet_cluster(), 0);
        let a = f.plan_transfer(0, 1, 1000, SimTime::ZERO);
        let b = f.plan_transfer(0, 2, 1000, SimTime::ZERO);
        assert_eq!(a.send_done, SimTime::from_nanos(1_000));
        assert_eq!(b.wire_start, a.send_done, "second message queues");
        assert_eq!(b.delivered, SimTime::from_nanos(12_000));
    }

    #[test]
    fn concurrent_receives_serialize_on_rx_nic() {
        let mut f = Fabric::new(quiet_cluster(), 0);
        let a = f.plan_transfer(1, 0, 1000, SimTime::ZERO);
        let b = f.plan_transfer(2, 0, 1000, SimTime::ZERO);
        assert_eq!(a.delivered, SimTime::from_nanos(11_000));
        // Both heads arrive at 10us; the second stream drains after the first.
        assert_eq!(b.delivered, SimTime::from_nanos(12_000));
    }

    #[test]
    fn duplex_tx_and_rx_do_not_interfere() {
        let mut f = Fabric::new(quiet_cluster(), 0);
        let out = f.plan_transfer(0, 1, 1000, SimTime::ZERO);
        let inc = f.plan_transfer(2, 0, 1000, SimTime::ZERO);
        assert_eq!(out.delivered, SimTime::from_nanos(11_000));
        assert_eq!(inc.delivered, SimTime::from_nanos(11_000));
    }

    #[test]
    fn same_node_uses_shared_memory() {
        let cluster = ClusterModel::builder("t", 2)
            .cpus_per_node(2)
            .noise(NoiseParams::OFF)
            .shared_memory(1e9, SimSpan::from_nanos(100))
            .build();
        let mut f = Fabric::new(cluster, 0);
        // Ranks 0 and 2 share node 0 under cyclic mapping.
        let plan = f.plan_transfer(0, 2, 1000, SimTime::ZERO);
        assert_eq!(plan.delivered, SimTime::from_nanos(1_100));
        assert_eq!(f.stats().shm_messages, 1);
        // NIC stays free.
        let net = f.plan_transfer(0, 1, 1000, SimTime::ZERO);
        assert_eq!(net.wire_start, SimTime::ZERO);
    }

    #[test]
    fn later_ready_time_delays_wire_start() {
        let mut f = Fabric::new(quiet_cluster(), 0);
        let t = SimTime::from_nanos(5_000);
        let plan = f.plan_transfer(0, 1, 1000, t);
        assert_eq!(plan.wire_start, t);
    }

    #[test]
    fn stats_accumulate() {
        let mut f = Fabric::new(quiet_cluster(), 0);
        f.plan_transfer(0, 1, 100, SimTime::ZERO);
        f.plan_transfer(1, 2, 200, SimTime::ZERO);
        let s = f.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 300);
    }

    #[test]
    fn reset_occupancy_clears_queues_and_stats() {
        let mut f = Fabric::new(quiet_cluster(), 0);
        f.plan_transfer(0, 1, 1_000_000, SimTime::ZERO);
        f.reset_occupancy();
        assert_eq!(f.stats(), FabricStats::default());
        let plan = f.plan_transfer(0, 2, 1000, SimTime::ZERO);
        assert_eq!(plan.wire_start, SimTime::ZERO);
    }

    #[test]
    fn noise_perturbs_but_same_seed_reproduces() {
        let cluster = quiet_cluster().with_noise(NoiseParams::new(0.05));
        let mut f1 = Fabric::new(cluster.clone(), 9);
        let mut f2 = Fabric::new(cluster, 9);
        let a = f1.plan_transfer(0, 1, 100_000, SimTime::ZERO);
        let b = f2.plan_transfer(0, 1, 100_000, SimTime::ZERO);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_fault_plan_is_bit_identical() {
        let healthy = quiet_cluster().with_noise(NoiseParams::new(0.05));
        let faulted = healthy.clone().with_faults(crate::fault::FaultPlan::none());
        let mut a = Fabric::new(healthy, 11);
        let mut b = Fabric::new(faulted, 11);
        for i in 0..20 {
            let x = a.plan_transfer(i % 4, 4 + i % 4, 10_000, SimTime::ZERO);
            let y = b.plan_transfer(i % 4, 4 + i % 4, 10_000, SimTime::ZERO);
            assert_eq!(x, y);
        }
    }

    #[test]
    fn degraded_link_stretches_serialization() {
        let cluster = quiet_cluster()
            .with_faults(crate::fault::FaultPlan::none().with_degraded_link(0, 1, 4.0));
        let mut f = Fabric::new(cluster, 0);
        // 1000 B at 1 GB/s = 1 us, degraded 4x = 4 us, + 10 us latency.
        let plan = f.plan_transfer(0, 1, 1000, SimTime::ZERO);
        assert_eq!(plan.send_done, SimTime::from_nanos(4_000));
        assert_eq!(plan.delivered, SimTime::from_nanos(14_000));
        // The 1-2 link is untouched.
        f.reset_occupancy();
        let plan = f.plan_transfer(1, 2, 1000, SimTime::ZERO);
        assert_eq!(plan.delivered, SimTime::from_nanos(11_000));
    }

    #[test]
    fn straggler_scales_overheads_and_shm() {
        let cluster = ClusterModel::builder("t", 2)
            .cpus_per_node(2)
            .overheads(SimSpan::from_micros(2), SimSpan::from_micros(3))
            .noise(NoiseParams::OFF)
            .shared_memory(1e9, SimSpan::ZERO)
            .faults(crate::fault::FaultPlan::none().with_straggler(0, 5.0))
            .build();
        let mut f = Fabric::new(cluster, 0);
        assert_eq!(f.send_overhead(0), SimSpan::from_micros(10));
        assert_eq!(f.recv_overhead(0), SimSpan::from_micros(15));
        assert_eq!(f.send_overhead(1), SimSpan::from_micros(2));
        // Ranks 0 and 2 share node 0; the copy runs on rank 0's CPU.
        let plan = f.plan_transfer(0, 2, 1000, SimTime::ZERO);
        assert_eq!(plan.delivered, SimTime::from_nanos(5_000));
    }

    #[test]
    fn spikes_add_latency_sometimes_and_deterministically() {
        let cluster = quiet_cluster().with_faults(
            crate::fault::FaultPlan::none().with_spikes(0.5, SimSpan::from_micros(100)),
        );
        let mut a = Fabric::new(cluster.clone(), 3);
        let mut b = Fabric::new(cluster, 3);
        let mut spiked = 0;
        for i in 0..40 {
            a.reset_occupancy();
            b.reset_occupancy();
            let x = a.plan_transfer(0, 1, 1000, SimTime::ZERO);
            let y = b.plan_transfer(0, 1, 1000, SimTime::ZERO);
            assert_eq!(x, y, "spike stream must be seed-deterministic (i={i})");
            if x.delivered >= SimTime::from_nanos(111_000) {
                spiked += 1;
            }
        }
        assert!(spiked > 5 && spiked < 35, "spiked {spiked}/40");
    }

    #[test]
    fn gamma_emerges_from_tx_serialization() {
        // The ratio T_linear(P)/T_p2p for an 8 KB segment should sit
        // strictly between 1 and P-1 on the calibrated presets.
        for cluster in [ClusterModel::grisou(), ClusterModel::gros()] {
            let cluster = cluster.with_noise(NoiseParams::OFF);
            let seg = 8 * 1024;
            let mut f = Fabric::new(cluster, 0);
            let p2p = f.plan_transfer(0, 1, seg, SimTime::ZERO).delivered;
            f.reset_occupancy();
            let mut last = SimTime::ZERO;
            let p = 7;
            for child in 1..p {
                last = last.max(f.plan_transfer(0, child, seg, SimTime::ZERO).delivered);
            }
            let gamma = last.as_secs_f64() / p2p.as_secs_f64();
            assert!(gamma > 1.2 && gamma < 2.0, "gamma(7) = {gamma}");
        }
    }
}

#[cfg(test)]
mod rack_tests {
    use super::*;
    use crate::cluster::ClusterModel;
    use crate::noise::NoiseParams;
    use crate::time::{SimSpan, SimTime};

    /// 8 nodes in 2 racks of 4, 4x oversubscribed uplinks, no noise.
    fn racked() -> ClusterModel {
        ClusterModel::builder("racked", 8)
            .bandwidth_gbps(8.0) // 1 GB/s
            .wire_latency(SimSpan::from_micros(10))
            .switch_hops(0, SimSpan::ZERO)
            .per_msg_gap(SimSpan::ZERO)
            .overheads(SimSpan::ZERO, SimSpan::ZERO)
            .racks(4, 4.0, SimSpan::from_micros(5))
            .noise(NoiseParams::OFF)
            .build()
    }

    #[test]
    fn rack_accessors() {
        let c = racked();
        assert_eq!(c.rack_count(), 2);
        assert_eq!(c.rack_of(0), 0);
        assert_eq!(c.rack_of(3), 0);
        assert_eq!(c.rack_of(4), 1);
        assert!(c.same_rack(0, 3));
        assert!(!c.same_rack(3, 4));
        // Uplink: 1 GB/s * 4 nodes / 4 oversubscription = 1 GB/s.
        assert!((c.uplink_bandwidth().unwrap() - 1e9).abs() < 1.0);
        assert_eq!(ClusterModel::gros().rack_count(), 1);
        assert!(ClusterModel::gros().same_rack(0, 123));
    }

    #[test]
    fn intra_rack_transfers_are_unaffected() {
        let mut f = Fabric::new(racked(), 0);
        let plan = f.plan_transfer(0, 1, 1000, SimTime::ZERO);
        // 1 us serialization + 10 us latency, no cross-rack penalty.
        assert_eq!(plan.delivered, SimTime::from_nanos(11_000));
    }

    #[test]
    fn single_cross_rack_transfer_pays_only_latency() {
        let mut f = Fabric::new(racked(), 0);
        let plan = f.plan_transfer(0, 4, 1000, SimTime::ZERO);
        // Uplink is as fast as the NIC here (4 nodes / 4x), so the only
        // extra cost is 2 x 5 us cross-rack latency... plus the uplink
        // rate-limiter seeds at dur_up for the first message.
        let base = SimTime::from_nanos(11_000 + 10_000);
        assert!(plan.delivered >= SimTime::from_nanos(21_000));
        assert!(
            plan.delivered <= base + SimSpan::from_micros(3),
            "{:?}",
            plan
        );
    }

    #[test]
    fn concurrent_cross_rack_flows_share_the_uplink() {
        // 4 concurrent flows, one per node of rack 0, to distinct nodes
        // of rack 1: with 4x oversubscription the last delivery is
        // roughly 4x a single flow's serialization later.
        let big = 1_000_000; // 1 ms at node speed, 1 ms at uplink speed
        let mut f = Fabric::new(racked(), 0);
        let mut last = SimTime::ZERO;
        for i in 0..4 {
            let plan = f.plan_transfer(i, 4 + i, big, SimTime::ZERO);
            last = last.max(plan.delivered);
        }
        // Serial uplink drain: ~4 ms; a flat switch would finish in ~2 ms.
        assert!(
            last > SimTime::from_nanos(3_500_000),
            "uplink contention missing: {last}"
        );
        // Same pattern within one rack (0..4 to each other? use flat
        // comparison cluster): no uplink involved.
        let flat = ClusterModel::builder("flat", 8)
            .bandwidth_gbps(8.0)
            .wire_latency(SimSpan::from_micros(10))
            .switch_hops(0, SimSpan::ZERO)
            .per_msg_gap(SimSpan::ZERO)
            .overheads(SimSpan::ZERO, SimSpan::ZERO)
            .noise(NoiseParams::OFF)
            .build();
        let mut f = Fabric::new(flat, 0);
        let mut flat_last = SimTime::ZERO;
        for i in 0..4 {
            let plan = f.plan_transfer(i, 4 + i, big, SimTime::ZERO);
            flat_last = flat_last.max(plan.delivered);
        }
        assert!(flat_last < SimTime::from_nanos(2_500_000));
        assert!(last > flat_last + SimSpan::from_millis(1));
    }

    #[test]
    fn reset_clears_rack_pipes() {
        let mut f = Fabric::new(racked(), 0);
        for i in 0..4 {
            let _ = f.plan_transfer(i, 4 + i, 1_000_000, SimTime::ZERO);
        }
        f.reset_occupancy();
        let plan = f.plan_transfer(0, 4, 1000, SimTime::ZERO);
        assert!(plan.delivered <= SimTime::from_nanos(25_000), "{:?}", plan);
    }
}

#[cfg(test)]
mod reset_tests {
    use super::*;
    use crate::cluster::ClusterModel;
    use crate::noise::NoiseParams;
    use crate::time::{SimSpan, SimTime};

    fn quiet_cluster() -> ClusterModel {
        ClusterModel::builder("t", 8)
            .bandwidth_gbps(8.0)
            .wire_latency(SimSpan::from_micros(10))
            .switch_hops(0, SimSpan::ZERO)
            .per_msg_gap(SimSpan::ZERO)
            .overheads(SimSpan::ZERO, SimSpan::ZERO)
            .noise(NoiseParams::OFF)
            .build()
    }

    #[test]
    fn reset_is_equivalent_to_fresh_fabric() {
        // The batched DAG evaluator leans on `reset(seed)` instead of
        // rebuilding a fabric per repetition, so the two must be
        // bit-identical — including the noise and fault-spike RNG
        // streams, which both derive from the seed.
        let cluster = quiet_cluster()
            .with_noise(NoiseParams::new(0.05))
            .with_faults(
                crate::fault::FaultPlan::none()
                    .with_degraded_link(0, 1, 3.0)
                    .with_straggler(2, 2.0)
                    .with_spikes(0.3, SimSpan::from_micros(50)),
            );
        let mut reused = Fabric::new(cluster.clone(), 1);
        // Dirty every piece of state the reset must clear.
        for i in 0..10 {
            let _ = reused.plan_transfer(i % 4, 4 + i % 4, 50_000, SimTime::ZERO);
        }
        for seed in [1u64, 7, 0xC0FFEE] {
            reused.reset(seed);
            let mut fresh = Fabric::new(cluster.clone(), seed);
            for i in 0..20 {
                let x = reused.plan_transfer(i % 4, 4 + i % 4, 20_000, SimTime::ZERO);
                let y = fresh.plan_transfer(i % 4, 4 + i % 4, 20_000, SimTime::ZERO);
                assert_eq!(x, y, "seed={seed} transfer {i}");
            }
            assert_eq!(reused.stats(), fresh.stats(), "seed={seed}");
        }
    }
}
