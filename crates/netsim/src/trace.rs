//! Transfer tracing: optional per-message records and exporters.
//!
//! When enabled on a [`crate::Fabric`], every planned transfer is
//! recorded with its full timeline. Traces can be rendered as
//! `chrome://tracing` / Perfetto JSON ([`to_chrome_trace`]) or as a
//! plain-text summary ([`summarize`]) — indispensable when debugging
//! why a collective schedule underperforms.

use crate::time::SimTime;
use std::fmt::Write as _;

/// One recorded transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferRecord {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Payload bytes.
    pub bytes: usize,
    /// When the payload was ready to leave the sender.
    pub ready: SimTime,
    /// When the first byte left the sender NIC.
    pub wire_start: SimTime,
    /// When the sender-side resources were released.
    pub send_done: SimTime,
    /// When the last byte arrived at the receiver.
    pub delivered: SimTime,
    /// Whether the shared-memory path was used.
    pub shm: bool,
}

impl TransferRecord {
    /// Time spent queueing behind earlier transfers on the sender NIC.
    pub fn queueing(&self) -> f64 {
        (self.wire_start - self.ready).as_secs_f64()
    }

    /// End-to-end duration from ready to delivered.
    pub fn duration(&self) -> f64 {
        (self.delivered - self.ready).as_secs_f64()
    }
}

/// Renders records as a Chrome-tracing (Perfetto-compatible) JSON
/// array: one complete event per transfer, grouped by sender rank
/// (`pid`) with the receiver as `tid`.
pub fn to_chrome_trace(records: &[TransferRecord]) -> String {
    let mut out = String::from("[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts_us = r.wire_start.as_nanos() as f64 / 1e3;
        let dur_us = (r.delivered - r.wire_start).as_secs_f64() * 1e6;
        let _ = write!(
            out,
            "{{\"name\":\"{}->{} {}B{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
             \"pid\":{},\"tid\":{}}}",
            r.src,
            r.dst,
            r.bytes,
            if r.shm { " shm" } else { "" },
            ts_us,
            dur_us,
            r.src,
            r.dst
        );
    }
    out.push(']');
    out
}

/// Aggregate statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSummary {
    /// Number of transfers.
    pub transfers: usize,
    /// Total payload bytes.
    pub bytes: u64,
    /// Mean sender-side queueing delay in seconds (NIC contention).
    pub mean_queueing: f64,
    /// Maximum sender-side queueing delay in seconds.
    pub max_queueing: f64,
    /// Virtual time of the last delivery.
    pub last_delivery: SimTime,
}

/// Summarises a trace (zeroed summary for an empty trace).
pub fn summarize(records: &[TransferRecord]) -> TraceSummary {
    if records.is_empty() {
        return TraceSummary {
            transfers: 0,
            bytes: 0,
            mean_queueing: 0.0,
            max_queueing: 0.0,
            last_delivery: SimTime::ZERO,
        };
    }
    let total_queue: f64 = records.iter().map(TransferRecord::queueing).sum();
    TraceSummary {
        transfers: records.len(),
        bytes: records.iter().map(|r| r.bytes as u64).sum(),
        mean_queueing: total_queue / records.len() as f64,
        max_queueing: records
            .iter()
            .map(TransferRecord::queueing)
            .fold(0.0, f64::max),
        last_delivery: records
            .iter()
            .map(|r| r.delivered)
            .fold(SimTime::ZERO, SimTime::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(src: usize, dst: usize, start_ns: u64) -> TransferRecord {
        TransferRecord {
            src,
            dst,
            bytes: 100,
            ready: SimTime::from_nanos(start_ns.saturating_sub(50)),
            wire_start: SimTime::from_nanos(start_ns),
            send_done: SimTime::from_nanos(start_ns + 100),
            delivered: SimTime::from_nanos(start_ns + 1_000),
            shm: false,
        }
    }

    #[test]
    fn chrome_trace_is_json_shaped() {
        let trace = to_chrome_trace(&[record(0, 1, 100), record(1, 2, 200)]);
        assert!(trace.starts_with('['));
        assert!(trace.ends_with(']'));
        assert_eq!(trace.matches("\"ph\":\"X\"").count(), 2);
        assert!(trace.contains("\"name\":\"0->1 100B\""));
    }

    #[test]
    fn empty_trace_renders() {
        assert_eq!(to_chrome_trace(&[]), "[]");
        let s = summarize(&[]);
        assert_eq!(s.transfers, 0);
        assert_eq!(s.last_delivery, SimTime::ZERO);
    }

    #[test]
    fn summary_aggregates() {
        let s = summarize(&[record(0, 1, 100), record(0, 2, 500)]);
        assert_eq!(s.transfers, 2);
        assert_eq!(s.bytes, 200);
        assert_eq!(s.last_delivery, SimTime::from_nanos(1_500));
        assert!(s.mean_queueing > 0.0);
        assert!(s.max_queueing >= s.mean_queueing);
    }

    #[test]
    fn queueing_measures_nic_wait() {
        let r = record(0, 1, 100);
        assert!((r.queueing() - 50e-9).abs() < 1e-15);
        assert!((r.duration() - 1050e-9).abs() < 1e-15);
    }
}
