//! End-to-end tests of the `colltune` and `repro` command-line tools
//! (run as real subprocesses).

use std::process::Command;

fn colltune() -> Command {
    Command::new(env!("CARGO_BIN_EXE_colltune"))
}

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("collsel-cli-{}-{name}", std::process::id()))
}

#[test]
fn colltune_tune_query_show_export_round_trip() {
    let model = temp_path("model.json");
    let rules = temp_path("rules.conf");

    let out = colltune()
        .args([
            "tune",
            "--nodes",
            "8",
            "--gbps",
            "10",
            "--tune-p",
            "6",
            "--out",
            model.to_str().unwrap(),
        ])
        .output()
        .expect("colltune runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("gamma(P):"), "{stdout}");
    assert!(stdout.contains("binomial"), "{stdout}");

    let out = colltune()
        .args([
            "query",
            "--model",
            model.to_str().unwrap(),
            "--p",
            "8",
            "--m",
            "8192",
            "--m",
            "1048576",
        ])
        .output()
        .expect("query runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("m = ").count(), 2, "{stdout}");

    let out = colltune()
        .args(["show", "--model", model.to_str().unwrap()])
        .output()
        .expect("show runs");
    assert!(out.status.success());

    let out = colltune()
        .args([
            "export",
            "--model",
            model.to_str().unwrap(),
            "--out",
            rules.to_str().unwrap(),
            "--comm-sizes",
            "4,8",
        ])
        .output()
        .expect("export runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let contents = std::fs::read_to_string(&rules).expect("rules written");
    assert!(contents.starts_with("1 # num of collectives"), "{contents}");
    assert!(contents.contains("7 # collective id"), "{contents}");

    let _ = std::fs::remove_file(model);
    let _ = std::fs::remove_file(rules);
}

#[test]
fn colltune_rejects_bad_usage() {
    let out = colltune().arg("tune").output().expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--nodes or --preset"), "{err}");

    let out = colltune().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
}

#[test]
fn colltune_rejects_unknown_flags_by_name() {
    // A typo like --segsize used to be silently ignored, changing
    // results without warning; now every subcommand validates its argv.
    let out = colltune()
        .args(["tune", "--nodes", "8", "--segsize", "7", "--out", "x.json"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--segsize"), "error must name the flag: {err}");
    assert!(err.contains("unknown flag"), "{err}");

    let out = colltune()
        .args([
            "query",
            "--model",
            "m.json",
            "--p",
            "8",
            "--m",
            "64",
            "--degarded",
        ])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--degarded"), "{err}");

    // Stray positional tokens are rejected too.
    let out = colltune()
        .args(["show", "--model", "m.json", "extra"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unexpected argument `extra`"), "{err}");

    // A trailing value-taking flag with no value is an error, not a
    // silent no-op.
    let out = colltune()
        .args(["export", "--model", "m.json", "--out"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("requires a value"), "{err}");
}

#[test]
fn colltune_bench_select_reports_throughput() {
    let model = temp_path("bench-model.json");
    let out = colltune()
        .args([
            "tune",
            "--nodes",
            "8",
            "--tune-p",
            "6",
            "--out",
            model.to_str().unwrap(),
        ])
        .output()
        .expect("tune runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = colltune()
        .args([
            "bench-select",
            "--model",
            model.to_str().unwrap(),
            "--queries",
            "5000",
            "--cache",
            "64",
        ])
        .output()
        .expect("bench-select runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("live ranking"), "{stdout}");
    assert!(stdout.contains("compiled"), "{stdout}");
    assert!(stdout.contains("hit rate"), "{stdout}");

    let _ = std::fs::remove_file(model);
}

#[test]
fn repro_help_and_bad_args() {
    let out = repro().arg("--help").output().expect("runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));

    let out = repro().arg("--bogus").output().expect("runs");
    assert!(!out.status.success());
}

#[test]
fn repro_quick_table1_writes_artifacts() {
    let dir = temp_path("results");
    let out = repro()
        .args(["--quick", "--out", dir.to_str().unwrap(), "table1"])
        .output()
        .expect("repro runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table 1"), "{stdout}");
    for ext in ["txt", "csv", "json"] {
        let p = dir.join(format!("table1.{ext}"));
        assert!(p.exists(), "missing {}", p.display());
    }
    let _ = std::fs::remove_dir_all(dir);
}
