//! Table 2: per-algorithm (α, β), estimated with the Sect. 4.2
//! procedure on both clusters, next to the paper's published values.
//!
//! Absolute values are not expected to match the paper (different
//! platform, even in shape), but two structural properties should hold:
//! the parameters differ *across algorithms* on one platform (the
//! context-dependence the paper demonstrates), and the full tuned model
//! is what drives Fig. 5 / Table 3.

use crate::config::{Fidelity, Scenario};
use crate::paper_ref::{TABLE2_GRISOU, TABLE2_GROS};
use crate::report::{format_csv, format_table};
use collsel::coll::BcastAlg;
use collsel::{TunedModel, Tuner};

/// The regenerated Table 2: one tuned model per cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Result {
    /// Tuned models, in scenario order (Grisou, Gros).
    pub models: Vec<TunedModel>,
}

impl Table2Result {
    /// The tuned model for a cluster, by name.
    pub fn model(&self, cluster: &str) -> Option<&TunedModel> {
        self.models.iter().find(|m| m.cluster_name == cluster)
    }

    fn paper_ref(cluster: &str, alg: BcastAlg) -> Option<(f64, f64)> {
        let table = match cluster {
            "grisou" => &TABLE2_GRISOU,
            "gros" => &TABLE2_GROS,
            _ => return None,
        };
        table
            .iter()
            .find(|&&(a, _, _)| a == alg)
            .map(|&(_, alpha, beta)| (alpha, beta))
    }

    fn rows(&self) -> Vec<Vec<String>> {
        let mut rows = Vec::new();
        for model in &self.models {
            for (&alg, est) in &model.params {
                let (pa, pb) = Self::paper_ref(&model.cluster_name, alg)
                    .map_or(("-".into(), "-".into()), |(a, b)| {
                        (format!("{a:.1e}"), format!("{b:.1e}"))
                    });
                rows.push(vec![
                    model.cluster_name.clone(),
                    alg.name().to_owned(),
                    format!("{:.3e}", est.hockney.alpha),
                    format!("{:.3e}", est.hockney.beta),
                    pa,
                    pb,
                ]);
            }
        }
        rows
    }

    /// Renders the aligned text table.
    pub fn to_text(&self) -> String {
        format!(
            "Table 2 — per-algorithm Hockney parameters\n\n{}",
            format_table(
                &[
                    "cluster",
                    "algorithm",
                    "alpha(s) ours",
                    "beta(s/B) ours",
                    "alpha paper",
                    "beta paper",
                ],
                &self.rows(),
            )
        )
    }

    /// Renders the CSV artifact.
    pub fn to_csv(&self) -> String {
        format_csv(
            &[
                "cluster",
                "algorithm",
                "alpha_ours",
                "beta_ours",
                "alpha_paper",
                "beta_paper",
            ],
            &self.rows(),
        )
    }
}

/// Regenerates Table 2 by running the full tuner on every scenario.
pub fn run_table2(scenarios: &[Scenario], fidelity: Fidelity) -> Table2Result {
    let models = scenarios
        .iter()
        .map(|sc| Tuner::new(sc.cluster.clone(), sc.tuner_config(fidelity)).tune())
        .collect();
    Table2Result { models }
}

// JSON persistence (layout-compatible with the former serde derives).
collsel_support::json_struct!(Table2Result { models });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::scenarios;
    use collsel::netsim::NoiseParams;

    #[test]
    fn table2_produces_six_rows_per_cluster() {
        let mut scs = scenarios(Fidelity::Quick);
        for sc in &mut scs {
            sc.cluster = sc.cluster.clone().with_noise(NoiseParams::OFF);
        }
        let t2 = run_table2(&scs, Fidelity::Quick);
        assert_eq!(t2.models.len(), 2);
        for model in &t2.models {
            assert_eq!(model.params.len(), 6);
        }
        // Context-dependence: on each cluster, the six algorithms must
        // not all share one beta.
        for model in &t2.models {
            let betas: Vec<f64> = model.params.values().map(|e| e.hockney.beta).collect();
            let min = betas.iter().cloned().fold(f64::MAX, f64::min);
            let max = betas.iter().cloned().fold(0.0_f64, f64::max);
            assert!(
                max > min * 1.05,
                "betas should differ across algorithms: {betas:?}"
            );
        }
        let text = t2.to_text();
        assert!(text.contains("binomial"));
        assert_eq!(t2.to_csv().lines().count(), 13);
    }
}
