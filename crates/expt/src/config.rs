//! Experiment configuration: fidelity levels and the two cluster
//! scenarios of the paper.

use collsel::estim::{log_spaced_sizes, AlphaBetaConfig, GammaConfig, Precision};
use collsel::mpi::Backend;
use collsel::netsim::ClusterModel;
use collsel::TunerConfig;

/// How faithfully to reproduce the paper's experiment scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// The paper's scales: 10 log-spaced sizes 8 KB–4 MB, Grisou runs
    /// at 50/80/90 processes, Gros at 80/100/124, MPIBlib precision.
    /// Takes minutes in release mode.
    Paper,
    /// Reduced scales for smoke runs and CI: fewer sizes, smaller
    /// process counts, loose precision. Seconds instead of minutes.
    Quick,
}

/// One experimental platform: a cluster plus the process counts the
/// paper evaluates on it.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The simulated cluster.
    pub cluster: ClusterModel,
    /// Process count used for the α/β estimation experiments
    /// (the paper: 40 on Grisou, 124 on Gros).
    pub tune_p: usize,
    /// Process counts of the Fig. 5 panels.
    pub fig5_ps: Vec<usize>,
    /// The process count of this cluster's Table 3 column
    /// (90 on Grisou, 100 on Gros).
    pub table3_p: usize,
    /// Message sizes of the sweeps.
    pub msg_sizes: Vec<usize>,
    /// Measurement stopping rule.
    pub precision: Precision,
    /// Fixed segment size for the model-based and oracle runs.
    pub seg_size: usize,
    /// Execution backend of every measurement in this scenario (tuning
    /// and sweeps); both backends are bit-identical.
    pub backend: Backend,
}

impl Scenario {
    /// The tuner configuration for this scenario.
    pub fn tuner_config(&self, fidelity: Fidelity) -> TunerConfig {
        match fidelity {
            Fidelity::Paper => {
                let mut cfg = TunerConfig::paper(self.tune_p);
                cfg.gamma.backend = self.backend;
                cfg.alpha_beta.backend = self.backend;
                cfg
            }
            Fidelity::Quick => {
                let mut cfg = TunerConfig::quick(self.tune_p);
                cfg.gamma = GammaConfig {
                    max_width: 7,
                    backend: self.backend,
                    ..GammaConfig::quick()
                };
                cfg.alpha_beta = AlphaBetaConfig {
                    p: self.tune_p,
                    backend: self.backend,
                    ..AlphaBetaConfig::quick(self.tune_p)
                };
                cfg
            }
        }
    }
}

/// The two platforms of the paper's evaluation, at the requested
/// fidelity.
pub fn scenarios(fidelity: Fidelity) -> Vec<Scenario> {
    match fidelity {
        Fidelity::Paper => vec![
            Scenario {
                cluster: ClusterModel::grisou(),
                // The paper tunes Grisou with 40 processes (half the
                // evaluated maximum). On the simulated Grisou the
                // interesting contention regime only starts once both
                // CPUs of a node are populated (P > 51), so the
                // estimation experiments run at the evaluation density
                // instead — the paper's own principle of estimating
                // parameters in the algorithm's execution context.
                tune_p: 80,
                fig5_ps: vec![50, 80, 90],
                table3_p: 90,
                msg_sizes: log_spaced_sizes(8 * 1024, 4 * 1024 * 1024, 10),
                precision: Precision::paper(),
                seg_size: 8 * 1024,
                backend: Backend::default(),
            },
            Scenario {
                cluster: ClusterModel::gros(),
                tune_p: 124,
                fig5_ps: vec![80, 100, 124],
                table3_p: 100,
                msg_sizes: log_spaced_sizes(8 * 1024, 4 * 1024 * 1024, 10),
                precision: Precision::paper(),
                seg_size: 8 * 1024,
                backend: Backend::default(),
            },
        ],
        Fidelity::Quick => vec![
            Scenario {
                cluster: ClusterModel::grisou(),
                tune_p: 16,
                fig5_ps: vec![24],
                table3_p: 24,
                msg_sizes: log_spaced_sizes(8 * 1024, 1024 * 1024, 5),
                precision: Precision::quick(),
                seg_size: 8 * 1024,
                backend: Backend::default(),
            },
            Scenario {
                cluster: ClusterModel::gros(),
                tune_p: 24,
                fig5_ps: vec![32],
                table3_p: 32,
                msg_sizes: log_spaced_sizes(8 * 1024, 1024 * 1024, 5),
                precision: Precision::quick(),
                seg_size: 8 * 1024,
                backend: Backend::default(),
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenarios_match_the_papers_setup() {
        let s = scenarios(Fidelity::Paper);
        assert_eq!(s.len(), 2);
        let grisou = &s[0];
        assert_eq!(grisou.cluster.name(), "grisou");
        assert_eq!(grisou.tune_p, 80);
        assert_eq!(grisou.fig5_ps, vec![50, 80, 90]);
        assert_eq!(grisou.table3_p, 90);
        assert_eq!(grisou.msg_sizes.len(), 10);
        assert_eq!(grisou.msg_sizes[0], 8 * 1024);
        assert_eq!(grisou.msg_sizes[9], 4 * 1024 * 1024);
        let gros = &s[1];
        assert_eq!(gros.tune_p, 124);
        assert_eq!(gros.table3_p, 100);
    }

    #[test]
    fn quick_scenarios_fit_their_clusters() {
        for sc in scenarios(Fidelity::Quick) {
            assert!(sc.tune_p <= sc.cluster.max_ranks());
            for &p in &sc.fig5_ps {
                assert!(p <= sc.cluster.max_ranks());
            }
            assert!(sc.fig5_ps.contains(&sc.table3_p));
        }
    }

    #[test]
    fn tuner_config_uses_scenario_p() {
        let sc = &scenarios(Fidelity::Quick)[0];
        let cfg = sc.tuner_config(Fidelity::Quick);
        assert_eq!(cfg.alpha_beta.p, sc.tune_p);
        assert_eq!(cfg.gamma.max_width, 7);
    }
}
