//! Rendering of experiment results: aligned text tables, CSV, and the
//! artifact writer used by the `repro` binary.

use collsel_support::ToJson;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Formats an aligned text table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let render = |out: &mut String, cells: &[String]| {
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:<w$}");
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    render(&mut out, &header_cells);
    let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        render(&mut out, row);
    }
    out
}

/// Formats rows as CSV (no quoting — cells are numeric or simple
/// identifiers).
pub fn format_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        debug_assert!(
            row.iter().all(|c| !c.contains(',')),
            "CSV cells must not contain commas"
        );
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Human-friendly byte-size label (matches the paper's axis labels).
pub fn size_label(bytes: usize) -> String {
    if bytes >= 1024 * 1024 && bytes.is_multiple_of(1024 * 1024) {
        format!("{}MB", bytes / (1024 * 1024))
    } else if bytes >= 1024 {
        format!("{}KB", bytes / 1024)
    } else {
        format!("{bytes}B")
    }
}

/// Writes experiment artifacts (text, CSV, JSON) under a directory.
#[derive(Debug, Clone)]
pub struct ArtifactSink {
    dir: Option<PathBuf>,
}

impl ArtifactSink {
    /// A sink writing into `dir` (created if needed).
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created.
    pub fn new(dir: impl AsRef<Path>) -> io::Result<Self> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(ArtifactSink {
            dir: Some(dir.as_ref().to_owned()),
        })
    }

    /// A sink that discards artifacts (print-only runs).
    pub fn discard() -> Self {
        ArtifactSink { dir: None }
    }

    /// Writes a text artifact.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_text(&self, name: &str, content: &str) -> io::Result<()> {
        if let Some(dir) = &self.dir {
            fs::write(dir.join(name), content)?;
        }
        Ok(())
    }

    /// Serialises `value` as pretty JSON next to the text artifacts.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_json<T: ToJson>(&self, name: &str, value: &T) -> io::Result<()> {
        if let Some(dir) = &self.dir {
            fs::write(dir.join(name), value.to_json().to_string_pretty())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = format_table(
            &["m", "alg"],
            &[
                vec!["8".into(), "binomial".into()],
                vec!["4096".into(), "chain".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("m     alg"));
        assert!(lines[2].starts_with("8     binomial"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = format_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn csv_round_trip_shape() {
        let c = format_csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "a,b\n1,2\n");
    }

    #[test]
    fn size_labels() {
        assert_eq!(size_label(512), "512B");
        assert_eq!(size_label(8 * 1024), "8KB");
        assert_eq!(size_label(4 * 1024 * 1024), "4MB");
        assert_eq!(size_label(370_728), "362KB");
    }

    #[test]
    fn sink_writes_files() {
        let dir = std::env::temp_dir().join(format!("collsel-test-{}", std::process::id()));
        let sink = ArtifactSink::new(&dir).unwrap();
        sink.write_text("t.txt", "hello").unwrap();
        sink.write_json("t.json", &vec![1, 2, 3]).unwrap();
        assert_eq!(fs::read_to_string(dir.join("t.txt")).unwrap(), "hello");
        assert!(fs::read_to_string(dir.join("t.json"))
            .unwrap()
            .contains('1'));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn discard_sink_is_silent() {
        let sink = ArtifactSink::discard();
        sink.write_text("x", "y").unwrap();
    }
}
