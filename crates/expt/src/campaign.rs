//! Rendering of adaptive-campaign reports: per-collective coverage
//! accounting (grid cells vs measured cells vs simulated batches) in
//! the same text/CSV/JSON shapes as the other experiment artifacts.

use crate::report::{format_csv, format_table};
use collsel::estim::memo_counters;
use collsel::{CampaignPlan, CampaignReport, CampaignStrategy};
use collsel_support::Json;

/// A campaign report paired with the plan that produced it, ready to
/// render.
#[derive(Debug, Clone)]
pub struct CampaignSummary<'a> {
    plan: &'a CampaignPlan,
    report: &'a CampaignReport,
}

/// Column headers shared by the text and CSV renderings.
const HEADERS: [&str; 6] = [
    "collective",
    "grid_cells",
    "measured",
    "interpolated",
    "batches",
    "reduction",
];

impl<'a> CampaignSummary<'a> {
    /// Pairs a plan with its report.
    pub fn new(plan: &'a CampaignPlan, report: &'a CampaignReport) -> Self {
        CampaignSummary { plan, report }
    }

    /// One row per collective, plus a `total` row.
    fn rows(&self) -> Vec<Vec<String>> {
        let mut rows: Vec<Vec<String>> = self
            .report
            .per_collective
            .iter()
            .map(|s| {
                vec![
                    s.collective.to_string(),
                    s.grid_cells.to_string(),
                    s.measured_cells.to_string(),
                    (s.grid_cells - s.measured_cells.min(s.grid_cells)).to_string(),
                    s.simulated_batches.to_string(),
                    format!(
                        "{:.2}x",
                        s.grid_cells as f64 / s.measured_cells.max(1) as f64
                    ),
                ]
            })
            .collect();
        let (grid, measured) = (self.report.grid_cells(), self.report.measured_cells());
        rows.push(vec![
            "total".to_owned(),
            grid.to_string(),
            measured.to_string(),
            (grid - measured.min(grid)).to_string(),
            self.report.simulated_batches().to_string(),
            format!("{:.2}x", self.report.cell_reduction()),
        ]);
        rows
    }

    /// The strategy line shown above the text table.
    fn strategy_label(&self) -> String {
        match self.plan.strategy {
            CampaignStrategy::Exhaustive => "exhaustive".to_owned(),
            CampaignStrategy::Adaptive {
                anchor_step,
                leader_early_stop,
            } => format!(
                "adaptive (anchor_step={anchor_step}, early_stop={leader_early_stop}, \
                 decisive_margin={})",
                self.plan.decisive_margin
            ),
        }
    }

    /// Aligned text table with a strategy header line.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "campaign strategy: {}{}\n",
            self.strategy_label(),
            if self.report.budget_exhausted {
                " [budget exhausted]"
            } else {
                ""
            }
        );
        out.push_str(&format_table(&HEADERS, &self.rows()));
        out
    }

    /// CSV with the same columns as the text table.
    pub fn to_csv(&self) -> String {
        format_csv(&HEADERS, &self.rows())
    }

    /// JSON object embedding the plan shape, the per-collective cost
    /// accounting and the headline totals (the shape `colltune`
    /// attaches as model metadata and the campaign bench records).
    pub fn to_json(&self) -> Json {
        let per_collective = self
            .report
            .per_collective
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("collective".to_owned(), Json::Str(s.collective.to_string())),
                    ("grid_cells".to_owned(), Json::Num(s.grid_cells as f64)),
                    (
                        "measured_cells".to_owned(),
                        Json::Num(s.measured_cells as f64),
                    ),
                    (
                        "simulated_batches".to_owned(),
                        Json::Num(s.simulated_batches as f64),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("strategy".to_owned(), Json::Str(self.strategy_label())),
            (
                "collectives".to_owned(),
                Json::Num(self.plan.collectives.len() as f64),
            ),
            (
                "comm_sizes".to_owned(),
                Json::Num(self.plan.comm_sizes.len() as f64),
            ),
            (
                "msg_sizes".to_owned(),
                Json::Num(self.plan.msg_sizes.len() as f64),
            ),
            (
                "grid_cells".to_owned(),
                Json::Num(self.report.grid_cells() as f64),
            ),
            (
                "measured_cells".to_owned(),
                Json::Num(self.report.measured_cells() as f64),
            ),
            (
                "simulated_batches".to_owned(),
                Json::Num(self.report.simulated_batches() as f64),
            ),
            (
                "cell_reduction".to_owned(),
                Json::Num(self.report.cell_reduction()),
            ),
            (
                "budget_exhausted".to_owned(),
                Json::Bool(self.report.budget_exhausted),
            ),
            ("per_collective".to_owned(), Json::Arr(per_collective)),
            ("memo".to_owned(), memo_json()),
        ])
    }
}

/// Snapshot of the process-wide measurement memo counters — the
/// compiled-DAG cell cache and the shared payload store — attached to
/// campaign accounting so cache effectiveness lands in the same
/// artifact as the cell/batch totals. The counters are monotonic since
/// process start; a campaign that is the process's only workload reads
/// them as its own hit/miss ledger.
fn memo_json() -> Json {
    let c = memo_counters();
    Json::Obj(vec![
        ("dag_hits".to_owned(), Json::Num(c.dag_hits as f64)),
        ("dag_misses".to_owned(), Json::Num(c.dag_misses as f64)),
        ("payload_hits".to_owned(), Json::Num(c.payload_hits as f64)),
        (
            "payload_misses".to_owned(),
            Json::Num(c.payload_misses as f64),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use collsel::coll::Collective;
    use collsel::netsim::{ClusterModel, NoiseParams};
    use collsel::{Tuner, TunerConfig};

    fn summary_fixture() -> (CampaignPlan, CampaignReport) {
        let tuner = Tuner::new(
            ClusterModel::gros().with_noise(NoiseParams::OFF),
            TunerConfig::quick(8),
        );
        let plan = CampaignPlan::adaptive(
            vec![Collective::Scatter],
            vec![4, 8],
            vec![1024, 4096, 16384, 65536],
            2,
        );
        let report = tuner.run_campaign(&plan, None);
        (plan, report)
    }

    #[test]
    fn text_table_has_per_collective_and_total_rows() {
        let (plan, report) = summary_fixture();
        let text = CampaignSummary::new(&plan, &report).to_text();
        assert!(text.contains("campaign strategy: adaptive"));
        assert!(text.contains("scatter"));
        assert!(text.lines().last().unwrap().starts_with("total"));
    }

    #[test]
    fn csv_matches_grid_accounting() {
        let (plan, report) = summary_fixture();
        let csv = CampaignSummary::new(&plan, &report).to_csv();
        let total = csv.lines().last().unwrap();
        assert!(total.starts_with(&format!(
            "total,{},{}",
            report.grid_cells(),
            report.measured_cells()
        )));
    }

    #[test]
    fn json_embeds_headline_totals() {
        let (plan, report) = summary_fixture();
        let json = CampaignSummary::new(&plan, &report).to_json();
        assert_eq!(
            json.get("grid_cells").and_then(Json::as_f64),
            Some(report.grid_cells() as f64)
        );
        assert_eq!(
            json.get("budget_exhausted"),
            Some(&Json::Bool(report.budget_exhausted))
        );
        assert!(json.get("per_collective").is_some());
        let memo = json.get("memo").expect("memo counters attached");
        for key in ["dag_hits", "dag_misses", "payload_hits", "payload_misses"] {
            assert!(memo.get(key).and_then(Json::as_f64).is_some(), "{key}");
        }
    }
}
