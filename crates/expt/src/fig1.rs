//! Fig. 1: traditional analytical models vs experimental curves.
//!
//! The paper's motivating figure: the textbook models of the binary and
//! binomial broadcast algorithms, fed with network-level Hockney
//! parameters from point-to-point experiments, against the measured
//! execution times at P = 90 on Grisou. The traditional binomial model
//! (⌈log₂P⌉ rounds of the full message) misses the segmented
//! implementation entirely.

use crate::config::Scenario;
use crate::plot::{ascii_chart, Series};
use crate::report::{format_csv, format_table, size_label};
use collsel::coll::BcastAlg;
use collsel::estim::measure::bcast_time;
use collsel::estim::{estimate_network_hockney, NetworkHockneyEstimate};
use collsel::model::traditional;

/// One message size of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig1Point {
    /// Message size in bytes.
    pub m: usize,
    /// Measured binary-tree time (seconds).
    pub measured_binary: f64,
    /// Traditional model prediction for the binary tree.
    pub predicted_binary: f64,
    /// Measured binomial-tree time.
    pub measured_binomial: f64,
    /// Traditional model prediction for the binomial tree.
    pub predicted_binomial: f64,
}

/// The regenerated Fig. 1 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Result {
    /// Cluster the experiment ran on.
    pub cluster: String,
    /// Process count (the paper: 90).
    pub p: usize,
    /// Network-level Hockney parameters driving the predictions.
    pub network_alpha: f64,
    /// Reciprocal bandwidth of the network-level fit.
    pub network_beta: f64,
    /// One point per message size.
    pub points: Vec<Fig1Point>,
}

impl Fig1Result {
    /// Maximum over-/under-estimation factor of the traditional
    /// binomial model across the sweep (`max(pred/meas, meas/pred)`).
    pub fn binomial_worst_factor(&self) -> f64 {
        self.points
            .iter()
            .map(|pt| {
                let r = pt.predicted_binomial / pt.measured_binomial;
                r.max(1.0 / r)
            })
            .fold(1.0, f64::max)
    }

    /// Maximum over-/under-estimation factor of the traditional binary
    /// model across the sweep. The textbook model assumes two
    /// *serialized* sends per stage and a full point-to-point latency
    /// per segment, both of which the pipelined non-blocking
    /// implementation avoids — this is the factor that blows up.
    pub fn binary_worst_factor(&self) -> f64 {
        self.points
            .iter()
            .map(|pt| {
                let r = pt.predicted_binary / pt.measured_binary;
                r.max(1.0 / r)
            })
            .fold(1.0, f64::max)
    }

    /// Number of sweep points where the traditional models rank binary
    /// and binomial *opposite* to the measurement — the
    /// selection-relevant failure the paper demonstrates.
    pub fn ordering_inversions(&self) -> usize {
        self.points
            .iter()
            .filter(|pt| {
                let predicted_binary_wins = pt.predicted_binary < pt.predicted_binomial;
                let measured_binary_wins = pt.measured_binary < pt.measured_binomial;
                predicted_binary_wins != measured_binary_wins
            })
            .count()
    }

    fn rows(&self) -> Vec<Vec<String>> {
        self.points
            .iter()
            .map(|pt| {
                vec![
                    size_label(pt.m),
                    format!("{:.6}", pt.measured_binary),
                    format!("{:.6}", pt.predicted_binary),
                    format!("{:.6}", pt.measured_binomial),
                    format!("{:.6}", pt.predicted_binomial),
                ]
            })
            .collect()
    }

    /// Renders the aligned text table.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "Fig. 1 — traditional models vs experiment ({}, P = {})\n\
             network-level Hockney: alpha = {:.3e} s, beta = {:.3e} s/B\n\n",
            self.cluster, self.p, self.network_alpha, self.network_beta
        );
        out.push_str(&format_table(
            &[
                "m",
                "binary measured(s)",
                "binary trad-model(s)",
                "binomial measured(s)",
                "binomial trad-model(s)",
            ],
            &self.rows(),
        ));
        out.push_str(&format!(
            "\ntraditional models off by up to {:.1}x (binary) / {:.1}x (binomial); \
             binary-vs-binomial ordering wrong at {}/{} sizes (the paper's point)\n\n",
            self.binary_worst_factor(),
            self.binomial_worst_factor(),
            self.ordering_inversions(),
            self.points.len(),
        ));
        let pick = |f: fn(&Fig1Point) -> f64| -> Vec<(f64, f64)> {
            self.points
                .iter()
                .map(|pt| (pt.m as f64, f(pt).max(1e-12)))
                .collect()
        };
        let series = [
            Series::new("binary measured", 'B', pick(|pt| pt.measured_binary)),
            Series::new("binary model", 'b', pick(|pt| pt.predicted_binary)),
            Series::new("binomial measured", 'N', pick(|pt| pt.measured_binomial)),
            Series::new("binomial model", 'n', pick(|pt| pt.predicted_binomial)),
        ];
        out.push_str(&ascii_chart(
            &format!("Fig. 1 ({}, P = {})", self.cluster, self.p),
            &series,
            64,
            16,
        ));
        out
    }

    /// Renders the CSV artifact.
    pub fn to_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|pt| {
                vec![
                    pt.m.to_string(),
                    format!("{:e}", pt.measured_binary),
                    format!("{:e}", pt.predicted_binary),
                    format!("{:e}", pt.measured_binomial),
                    format!("{:e}", pt.predicted_binomial),
                ]
            })
            .collect();
        format_csv(
            &[
                "m_bytes",
                "binary_measured_s",
                "binary_traditional_s",
                "binomial_measured_s",
                "binomial_traditional_s",
            ],
            &rows,
        )
    }
}

/// Regenerates Fig. 1 on a scenario at process count `p`.
pub fn run_fig1(scenario: &Scenario, p: usize, seed: u64) -> Fig1Result {
    let NetworkHockneyEstimate { hockney, .. } = estimate_network_hockney(
        &scenario.cluster,
        &[1024, 8 * 1024, 64 * 1024, 512 * 1024],
        &scenario.precision,
        seed,
    );
    let mut points = Vec::with_capacity(scenario.msg_sizes.len());
    for (i, &m) in scenario.msg_sizes.iter().enumerate() {
        let s = seed.wrapping_add((i as u64 + 1) * 10_007);
        let measured_binary = bcast_time(
            &scenario.cluster,
            BcastAlg::Binary,
            p,
            m,
            scenario.seg_size,
            &scenario.precision,
            s,
        )
        .mean;
        let measured_binomial = bcast_time(
            &scenario.cluster,
            BcastAlg::Binomial,
            p,
            m,
            scenario.seg_size,
            &scenario.precision,
            s.wrapping_add(1),
        )
        .mean;
        points.push(Fig1Point {
            m,
            measured_binary,
            predicted_binary: traditional::predict_bcast(
                BcastAlg::Binary,
                p,
                m,
                scenario.seg_size,
                &hockney,
            ),
            measured_binomial,
            predicted_binomial: traditional::predict_bcast(
                BcastAlg::Binomial,
                p,
                m,
                scenario.seg_size,
                &hockney,
            ),
        });
    }
    Fig1Result {
        cluster: scenario.cluster.name().to_owned(),
        p,
        network_alpha: hockney.alpha,
        network_beta: hockney.beta,
        points,
    }
}

// JSON persistence (layout-compatible with the former serde derives).
collsel_support::json_struct!(Fig1Point {
    m,
    measured_binary,
    predicted_binary,
    measured_binomial,
    predicted_binomial
});
collsel_support::json_struct!(Fig1Result {
    cluster,
    p,
    network_alpha,
    network_beta,
    points
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{scenarios, Fidelity};
    use collsel::netsim::NoiseParams;

    #[test]
    fn fig1_shows_traditional_model_error() {
        // The traditional models' blind spots (per-segment overheads,
        // NIC contention at the root) grow with P and message size, so
        // probe Fig. 1 at a paper-like scale.
        let mut sc = scenarios(Fidelity::Quick).remove(0);
        sc.cluster = sc.cluster.with_noise(NoiseParams::OFF);
        sc.msg_sizes = vec![8 * 1024, 4 * 1024 * 1024];
        let fig1 = run_fig1(&sc, 90, 1);
        assert_eq!(fig1.points.len(), 2);
        // The traditional binary model (serialized sends, per-segment
        // latency) must misestimate the pipelined implementation badly.
        assert!(
            fig1.binary_worst_factor() > 2.0,
            "binary worst factor {}",
            fig1.binary_worst_factor()
        );
        // And the binary/binomial ranking must come out wrong somewhere
        // — the selection-relevant failure of the traditional models.
        assert!(
            fig1.ordering_inversions() >= 1,
            "expected at least one ordering inversion"
        );
        let text = fig1.to_text();
        assert!(text.contains("Fig. 1"));
        assert!(text.contains("8KB"));
        let csv = fig1.to_csv();
        assert!(csv.lines().count() == 3);
    }
}
