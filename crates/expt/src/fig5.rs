//! Fig. 5: execution time of the Open MPI-selected, model-selected and
//! best algorithms across message sizes — six panels (three process
//! counts per cluster).

use crate::config::Scenario;
use crate::plot::{ascii_chart, Series};
use crate::report::{format_csv, format_table, size_label};
use crate::sweep::{sweep_panel, SweepPanel};
use collsel::TunedModel;

/// The regenerated Fig. 5: all panels of both clusters.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Result {
    /// One panel per (cluster, process count), in paper order.
    pub panels: Vec<SweepPanel>,
}

impl Fig5Result {
    /// The panel for `(cluster, p)`, if present.
    pub fn panel(&self, cluster: &str, p: usize) -> Option<&SweepPanel> {
        self.panels
            .iter()
            .find(|panel| panel.cluster == cluster && panel.p == p)
    }

    /// Renders all panels as aligned text tables.
    pub fn to_text(&self) -> String {
        let mut out =
            String::from("Fig. 5 — selection accuracy: Open MPI vs model-based vs best\n");
        for panel in &self.panels {
            out.push_str(&format!(
                "\n({}, P = {}; times in seconds)\n",
                panel.cluster, panel.p
            ));
            let rows: Vec<Vec<String>> = panel
                .points
                .iter()
                .map(|pt| {
                    vec![
                        size_label(pt.m),
                        format!("{:.6}", pt.openmpi_time),
                        format!("{:.6}", pt.model_time),
                        format!("{:.6}", pt.best_time),
                        pt.openmpi_pick.alg.name().to_owned(),
                        pt.model_pick.name().to_owned(),
                        pt.best.name().to_owned(),
                    ]
                })
                .collect();
            out.push_str(&format_table(
                &[
                    "m",
                    "open-mpi(s)",
                    "model(s)",
                    "best(s)",
                    "ompi pick",
                    "model pick",
                    "best alg",
                ],
                &rows,
            ));
            out.push('\n');
            out.push_str(&panel_chart(panel));
        }
        out
    }

    /// Renders the CSV artifact (one row per panel point).
    pub fn to_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .panels
            .iter()
            .flat_map(|panel| {
                panel.points.iter().map(|pt| {
                    vec![
                        panel.cluster.clone(),
                        panel.p.to_string(),
                        pt.m.to_string(),
                        format!("{:e}", pt.openmpi_time),
                        format!("{:e}", pt.model_time),
                        format!("{:e}", pt.best_time),
                        pt.openmpi_pick.alg.name().to_owned(),
                        pt.model_pick.name().to_owned(),
                        pt.best.name().to_owned(),
                    ]
                })
            })
            .collect();
        format_csv(
            &[
                "cluster",
                "p",
                "m_bytes",
                "openmpi_s",
                "model_s",
                "best_s",
                "openmpi_pick",
                "model_pick",
                "best_alg",
            ],
            &rows,
        )
    }
}

/// Renders one panel as the paper's log-log chart (three lines: Open
/// MPI, model-based, best).
fn panel_chart(panel: &SweepPanel) -> String {
    let pick = |f: fn(&crate::sweep::SweepPoint) -> f64| -> Vec<(f64, f64)> {
        panel
            .points
            .iter()
            .map(|pt| (pt.m as f64, f(pt).max(1e-12)))
            .collect()
    };
    let series = [
        Series::new("open-mpi", '#', pick(|pt| pt.openmpi_time)),
        Series::new("model-based", 'o', pick(|pt| pt.model_time)),
        Series::new("best", '.', pick(|pt| pt.best_time)),
    ];
    ascii_chart(
        &format!("({}, P = {})", panel.cluster, panel.p),
        &series,
        64,
        16,
    )
}

/// Regenerates Fig. 5 from tuned models (`tuned` in scenario order).
///
/// # Panics
///
/// Panics if `tuned` does not match `scenarios` in length.
pub fn run_fig5(scenarios: &[Scenario], tuned: &[TunedModel], seed: u64) -> Fig5Result {
    assert_eq!(scenarios.len(), tuned.len(), "one tuned model per scenario");
    let mut panels = Vec::new();
    for (i, (sc, model)) in scenarios.iter().zip(tuned).enumerate() {
        for (j, &p) in sc.fig5_ps.iter().enumerate() {
            panels.push(sweep_panel(
                sc,
                model,
                p,
                seed.wrapping_add(((i * 16 + j) as u64) << 24),
            ));
        }
    }
    Fig5Result { panels }
}

// JSON persistence (layout-compatible with the former serde derives).
collsel_support::json_struct!(Fig5Result { panels });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{scenarios, Fidelity};
    use collsel::netsim::NoiseParams;
    use collsel::{Tuner, TunerConfig};

    #[test]
    fn fig5_quick_round_trip() {
        let mut scs = scenarios(Fidelity::Quick);
        scs.truncate(1);
        scs[0].cluster = scs[0].cluster.clone().with_noise(NoiseParams::OFF);
        scs[0].msg_sizes = vec![8 * 1024, 256 * 1024];
        scs[0].fig5_ps = vec![12];
        let tuned = vec![Tuner::new(scs[0].cluster.clone(), TunerConfig::quick(12)).tune()];
        let fig5 = run_fig5(&scs, &tuned, 3);
        assert_eq!(fig5.panels.len(), 1);
        let panel = fig5.panel("grisou", 12).unwrap();
        assert_eq!(panel.points.len(), 2);
        // Model/best lines from the same measured table: model >= best.
        for pt in &panel.points {
            assert!(pt.model_time >= pt.best_time);
        }
        assert!(fig5.to_text().contains("P = 12"));
        assert_eq!(fig5.to_csv().lines().count(), 3);
    }
}
