//! `colltune` — tune the model-based broadcast selector for a cluster
//! and query it, the way a site administrator would deploy the paper's
//! method.
//!
//! ```text
//! colltune tune  [--preset grisou|gros | --nodes N --gbps G --latency-us L
//!                 --cpus-per-node C] [--tune-p P] [--paper] [--seed N] --out model.json
//! colltune query --model model.json --p P --m BYTES [--m BYTES]...
//! colltune show  --model model.json
//! ```
//!
//! `tune` runs the full estimation pipeline (γ then per-algorithm α/β)
//! on the simulated platform and writes the tuned model as JSON;
//! `query` loads a model and prints the runtime selections; `show`
//! prints the estimated parameter tables; `export` renders an Open MPI
//! dynamic-rules file usable with a *real* Open MPI installation via
//! `--mca coll_tuned_use_dynamic_rules 1
//!  --mca coll_tuned_dynamic_rules_filename <file>`.

use collsel::coll::Collective;
use collsel::estim::{log_spaced_sizes, RetryPolicy};
use collsel::mpi::Backend;
use collsel::netsim::{ClusterModel, FaultPlan, NoiseParams, SimSpan};
use collsel::select::rules::DecisionTable;
use collsel::select::{
    CollectiveDecisionService, DecisionServer, DecisionService, DecisionSource, Selector,
    ServerConfig,
};
use collsel::{CampaignPlan, TunedModel, Tuner, TunerConfig};
use collsel_expt::campaign::CampaignSummary;
use collsel_expt::replay::{
    backend_name, comparison_csv, comparison_json, degradation_pct, score_policies, ReplayPolicy,
};
use collsel_expt::soak::{run_soak, SoakConfig};
use collsel_expt::workload::{Trace, TraceGen, TracePreset};
use std::process::ExitCode;

const USAGE: &str = "usage:
  colltune tune   [--preset grisou|gros | --nodes N --gbps G --latency-us L --cpus-per-node C]
                  [--tune-p P] [--paper] [--seed N] [--faults SPEC] [-j N | --threads N]
                  [--collective NAME]... [--backend threads|events|dag]
                  [--adaptive] [--budget N] [--warm-from model.json] --out model.json
  colltune query  --model model.json --p P --m BYTES [--m BYTES]... [--degraded]
                  [--collective NAME]... [--backend threads|events|dag]
  colltune show   --model model.json
  colltune export --model model.json --out rules.conf [--comm-sizes A,B,...]
  colltune bench-select
                  --model model.json [--queries N] [--cache N] [--seed N]
                  [--comm-sizes A,B,...] [--collective NAME]...
  colltune serve  [--preset grisou|gros] [--tune-p P] [--queries N] [--threads N]
                  [--refits N] [--poison-every N] [--seed N] [--faults SPEC]
                  [--journal FILE] [--json FILE]
  colltune replay [--model model.json] (--trace trace.json | --gen dp|pp)
                  [--preset grisou|gros] [--world N] [--steps N] [--seed N]
                  [--backend threads|events|dag]
                  [--selector fixed|tuned|worst|server|all]... [--json FILE] [--csv FILE]

fault specs (NAME or NAME:SEED): none, degraded-link, straggler, brownout, spike, chaos
--collective: a collective to tune/query/bench beyond broadcast (repeatable):
bcast, reduce, allreduce, gather, scatter, allgather, alltoall, or `all`;
tune runs a breadth campaign per listed collective, query and bench-select
route through the multi-collective serving stack
-j/--threads: worker threads for the tuning campaign (default: COLLSEL_THREADS
or the host's available parallelism); any thread count yields bit-identical models
--adaptive: after tuning, run an adaptive measured-winner campaign (crossover
bisection + leader-settled repetitions) warm-started from the tuned model and
embed the resulting decision tables + coverage accounting in the model JSON;
--budget N caps measured cells per (collective, P) row and implies --adaptive;
--warm-from seeds the campaign from a neighbor cluster's model instead
--backend: measurement execution backend (default: dag — compile each cell to a
static timing DAG once and batch-evaluate repetitions payload-free; events replays
a compiled schedule per run; threads is the oracle); all three yield bit-identical
models
bench-select: compare decision-serving throughput (live ranking vs compiled table
vs cached service) for a tuned model
serve: soak the fault-tolerant decision server — tune a boot generation, then
drive seeded mixed query/refit traffic under the fault plan with hot swaps,
health-gated refits (every --poison-every'th is poisoned and must be rejected),
and post-hoc invariant validation; with --journal the run also demonstrates
crash-only recovery by rebuilding the server from the journalled last-good
generation afterwards; --json writes the soak report
replay: replay a training-job trace of mixed collectives on overlapping rank
groups end-to-end through the simulator and score selection policies by total
job completion time (JCT); --gen synthesises a seeded data-parallel (dp) or
pipeline-parallel (pp) trace instead of reading --trace; --selector picks the
policies to compare (default: fixed alone, or tuned+fixed+worst with --model;
`server` drives a live decision server with one lookup per call); JCT is
bit-identical across all three backends and any thread count";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "tune" => cmd_tune(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "show" => cmd_show(&args[1..]),
        "export" => cmd_export(&args[1..]),
        "bench-select" => cmd_bench_select(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "replay" => cmd_replay(&args[1..]),
        "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Validates the whole argv of a subcommand against its flag set: every
/// token must be a known value-taking flag (which consumes the next
/// token), a known boolean flag, or a consumed value. A typo like
/// `--segsize` must abort with an error naming the flag, not silently
/// change results.
fn validate_flags(
    args: &[String],
    value_flags: &[&str],
    bool_flags: &[&str],
) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if value_flags.contains(&arg) {
            if i + 1 >= args.len() {
                return Err(format!("flag {arg} requires a value"));
            }
            i += 2;
        } else if bool_flags.contains(&arg) {
            i += 1;
        } else if arg.starts_with('-') {
            let mut known: Vec<&str> = value_flags.iter().chain(bool_flags).copied().collect();
            known.sort_unstable();
            return Err(format!(
                "unknown flag `{arg}` (valid flags: {})",
                known.join(", ")
            ));
        } else {
            return Err(format!("unexpected argument `{arg}`"));
        }
    }
    Ok(())
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag_values<'a>(args: &'a [String], name: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1))
        .map(String::as_str)
        .collect()
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid {what}: `{s}`"))
}

/// Parses the `--backend` flag (default: [`Backend::Dag`]).
fn parse_backend(args: &[String]) -> Result<Backend, String> {
    match flag_value(args, "--backend") {
        Some(s) => s.parse(),
        None => Ok(Backend::default()),
    }
}

/// Parses the repeated `--collective` flag: collective names or the
/// shorthand `all`, deduplicated in first-seen order. Empty when the
/// flag is absent (broadcast-only behaviour).
fn parse_collectives(args: &[String]) -> Result<Vec<Collective>, String> {
    let mut out: Vec<Collective> = Vec::new();
    for value in flag_values(args, "--collective") {
        if value == "all" {
            for c in Collective::ALL {
                if !out.contains(&c) {
                    out.push(c);
                }
            }
        } else {
            let c: Collective = parse(value, "collective")?;
            if !out.contains(&c) {
                out.push(c);
            }
        }
    }
    Ok(out)
}

fn cmd_tune(args: &[String]) -> Result<(), String> {
    validate_flags(
        args,
        &[
            "--preset",
            "--nodes",
            "--gbps",
            "--latency-us",
            "--cpus-per-node",
            "--tune-p",
            "--seed",
            "--faults",
            "--out",
            "--threads",
            "-j",
            "--backend",
            "--collective",
            "--budget",
            "--warm-from",
        ],
        &["--paper", "--adaptive"],
    )?;
    let cluster = match flag_value(args, "--preset") {
        Some("grisou") => ClusterModel::grisou(),
        Some("gros") => ClusterModel::gros(),
        Some(other) => return Err(format!("unknown preset `{other}`")),
        None => {
            let nodes: usize = parse(
                flag_value(args, "--nodes").ok_or("--nodes or --preset required")?,
                "node count",
            )?;
            let gbps: f64 = parse(flag_value(args, "--gbps").unwrap_or("10"), "bandwidth")?;
            let lat: u64 = parse(flag_value(args, "--latency-us").unwrap_or("30"), "latency")?;
            let cpus: usize = parse(
                flag_value(args, "--cpus-per-node").unwrap_or("1"),
                "cpus per node",
            )?;
            ClusterModel::builder("custom", nodes)
                .cpus_per_node(cpus)
                .bandwidth_gbps(gbps)
                .wire_latency(SimSpan::from_micros(lat))
                .build()
        }
    };
    let default_p = (cluster.max_ranks() / 2).max(2).min(cluster.max_ranks());
    let tune_p: usize = match flag_value(args, "--tune-p") {
        Some(s) => parse(s, "tune-p")?,
        None => default_p,
    };
    let seed: u64 = match flag_value(args, "--seed") {
        Some(s) => parse(s, "seed")?,
        None => 0xC0115E1,
    };
    let out = flag_value(args, "--out").ok_or("--out required")?;

    let threads: usize = match flag_value(args, "--threads").or_else(|| flag_value(args, "-j")) {
        Some(s) => {
            let n: usize = parse(s, "thread count")?;
            if n == 0 {
                return Err("--threads must be at least 1".into());
            }
            collsel_support::pool::set_thread_override(n);
            n
        }
        None => collsel_support::pool::current_threads(),
    };

    let backend = parse_backend(args)?;
    let mut config = if args.iter().any(|a| a == "--paper") {
        TunerConfig::paper(tune_p)
    } else {
        TunerConfig::quick(tune_p)
    };
    config.seed = seed;
    config.gamma.backend = backend;
    config.alpha_beta.backend = backend;

    let faults = match flag_value(args, "--faults") {
        Some(spec) => Some(FaultPlan::parse(spec, cluster.nodes())?),
        None => None,
    };
    let collectives = parse_collectives(args)?;

    let budget: Option<usize> = match flag_value(args, "--budget") {
        Some(s) => {
            let n: usize = parse(s, "budget")?;
            if n == 0 {
                return Err("--budget must be at least 1".into());
            }
            Some(n)
        }
        None => None,
    };
    let adaptive = args.iter().any(|a| a == "--adaptive") || budget.is_some();
    let warm_from = flag_value(args, "--warm-from");
    if warm_from.is_some() && !adaptive {
        return Err("--warm-from requires --adaptive (or --budget)".into());
    }
    if adaptive && faults.as_ref().is_some_and(|p| !p.is_none()) {
        return Err("--adaptive campaigns do not run under an injected fault plan".into());
    }
    // The campaign re-measures winners on the same platform the model
    // was fitted on.
    let campaign_cluster = cluster.clone();
    let campaign_config = config.clone();

    eprintln!(
        "[colltune] tuning {} ({} slots) with {} experiment processes on {} threads \
         ({backend} backend)...",
        cluster.name(),
        cluster.max_ranks(),
        tune_p,
        threads
    );
    if !collectives.is_empty() {
        let names: Vec<&str> = collectives.iter().map(|c| c.name()).collect();
        eprintln!(
            "[colltune] breadth campaign over {} collective(s): {}",
            collectives.len(),
            names.join(", ")
        );
    }
    let model = match faults {
        Some(plan) if !plan.is_none() => {
            eprintln!("[colltune] injecting faults: {plan}");
            let cluster = cluster.with_faults(plan);
            let tuner = Tuner::new(cluster, config);
            let report = if collectives.is_empty() {
                tuner.try_tune(&RetryPolicy::default())
            } else {
                tuner.try_tune_collectives(&collectives, &RetryPolicy::default())
            }
            .map_err(|e| format!("tuning failed under the fault plan: {e}"))?;
            for (alg, why) in &report.skipped {
                eprintln!("[colltune] skipped {:<12} {why}", alg.name());
            }
            for (alg, why) in &report.skipped_multi {
                eprintln!("[colltune] skipped {:<22} {why}", alg.qualified_name());
            }
            for (alg, verdict) in report.model.validity() {
                if !verdict.is_valid() {
                    eprintln!("[colltune] suspect {:<12} fit is {verdict}", alg.name());
                }
            }
            for (alg, verdict) in report.model.multi_validity() {
                if !verdict.is_valid() {
                    eprintln!(
                        "[colltune] suspect {:<22} fit is {verdict}",
                        alg.qualified_name()
                    );
                }
            }
            if report.is_complete() {
                eprintln!("[colltune] all algorithms fitted despite the faults");
            }
            report.model
        }
        _ => {
            let tuner = Tuner::new(cluster, config);
            if collectives.is_empty() {
                tuner.tune()
            } else {
                tuner.tune_collectives(&collectives)
            }
        }
    };
    // `--adaptive`: a measured-winner campaign, warm-started from the
    // just-tuned model (or a neighbor's via `--warm-from`), whose
    // decision tables and coverage accounting ride along in the model
    // JSON.
    let campaign = if adaptive {
        let (warm_model, warm_label) = match warm_from {
            Some(path) => (load_model_path(path)?, path.to_owned()),
            None => (model.clone(), "self".to_owned()),
        };
        let campaign_collectives = if collectives.is_empty() {
            vec![Collective::Bcast]
        } else {
            collectives.clone()
        };
        let comm_sizes: Vec<usize> = [2usize, 4, 8, 16, 32]
            .into_iter()
            .filter(|&p| p <= campaign_cluster.max_ranks())
            .collect();
        let msg_sizes = log_spaced_sizes(1024, 1024 * 1024, 12);
        let mut plan = CampaignPlan::adaptive(campaign_collectives, comm_sizes, msg_sizes, 4);
        plan.seed = seed;
        plan.backend = backend;
        plan.budget = budget;
        if args.iter().any(|a| a == "--paper") {
            plan.precision = collsel::estim::Precision::paper();
        }
        eprintln!(
            "[colltune] adaptive campaign over {} collective(s), warm-started from {warm_label}...",
            plan.collectives.len()
        );
        let report =
            Tuner::new(campaign_cluster, campaign_config).run_campaign(&plan, Some(&warm_model));
        Some((plan, report, warm_label))
    } else {
        None
    };

    let mut json = collsel_support::ToJson::to_json(&model);
    if let collsel_support::Json::Obj(fields) = &mut json {
        // Campaign metadata rides along as extra top-level fields;
        // decoding ignores unknown fields, so older and newer readers
        // both load the model unchanged (and the model itself is
        // thread-count independent — this records how it was produced,
        // not what it contains).
        fields.push((
            "tuning_threads".to_owned(),
            collsel_support::Json::Num(threads as f64),
        ));
        fields.push((
            "sim_backend".to_owned(),
            collsel_support::Json::Str(backend.name().to_owned()),
        ));
        if let Some((plan, report, warm_label)) = &campaign {
            let mut meta = CampaignSummary::new(plan, report).to_json();
            if let collsel_support::Json::Obj(meta_fields) = &mut meta {
                meta_fields.push((
                    "warm_start".to_owned(),
                    collsel_support::Json::Str(warm_label.clone()),
                ));
                meta_fields.push((
                    "budget".to_owned(),
                    match plan.budget {
                        Some(b) => collsel_support::Json::Num(b as f64),
                        None => collsel_support::Json::Null,
                    },
                ));
            }
            fields.push(("campaign".to_owned(), meta));
            fields.push((
                "campaign_tables".to_owned(),
                collsel_support::Json::Arr(
                    report
                        .tables
                        .values()
                        .map(collsel_support::ToJson::to_json)
                        .collect(),
                ),
            ));
        }
    }
    std::fs::write(out, json.to_string_pretty()).map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!("[colltune] model written to {out}");
    print_tables(&model);
    if let Some((plan, report, _)) = &campaign {
        println!("{}", CampaignSummary::new(plan, report).to_text());
    }
    Ok(())
}

fn load_model(args: &[String]) -> Result<TunedModel, String> {
    load_model_path(flag_value(args, "--model").ok_or("--model required")?)
}

fn load_model_path(path: &str) -> Result<TunedModel, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value =
        collsel_support::Json::parse(&json).map_err(|e| format!("cannot parse {path}: {e}"))?;
    collsel_support::FromJson::from_json(&value).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    validate_flags(
        args,
        &["--model", "--p", "--m", "--backend", "--collective"],
        &["--degraded"],
    )?;
    // Queries evaluate closed-form models — no simulation runs — but
    // the flag is validated here too so scripted pipelines can pass a
    // uniform `--backend` to every subcommand.
    let _ = parse_backend(args)?;
    let model = load_model(args)?;
    let p: usize = parse(flag_value(args, "--p").ok_or("--p required")?, "p")?;
    let sizes = flag_values(args, "--m");
    if sizes.is_empty() {
        return Err("at least one --m required".into());
    }
    let collectives = parse_collectives(args)?;
    if !collectives.is_empty() {
        return query_multi(&model, &collectives, p, &sizes, args);
    }
    if args.iter().any(|a| a == "--degraded") {
        // Graceful path: works on partial/suspect models and reports
        // which path (model or Open MPI rules) decided each query.
        let selector = model.degraded_selector();
        println!(
            "graceful selections for {} at P = {p} ({} of {} algorithms modelled):",
            model.cluster_name,
            selector.modelled_algorithms().len(),
            collsel::coll::BcastAlg::ALL.len(),
        );
        for s in sizes {
            let m: usize = parse(s, "message size")?;
            let d = selector.decide(p, m);
            match &d.source {
                DecisionSource::Model { predicted } => println!(
                    "  m = {m:>9} B -> {:<12} (model, predicted {:.3} ms)",
                    d.selection.alg.name(),
                    predicted * 1e3,
                ),
                DecisionSource::Fallback { reason } => println!(
                    "  m = {m:>9} B -> {:<12} (open-mpi rules fallback: {reason})",
                    d.selection.alg.name(),
                ),
            }
        }
        return Ok(());
    }
    let selector = model.selector();
    println!("selections for {} at P = {p}:", model.cluster_name);
    for s in sizes {
        let m: usize = parse(s, "message size")?;
        let pick = selector.select(p, m);
        let ranking = selector.ranking(p, m);
        println!(
            "  m = {m:>9} B -> {:<12} (predicted {:.3} ms; next: {} at {:.3} ms)",
            pick.alg.name(),
            ranking[0].1 * 1e3,
            ranking[1].0.name(),
            ranking[1].1 * 1e3,
        );
    }
    Ok(())
}

/// `query --collective ...`: selections served by the multi-collective
/// stack, one block per collective, algorithms under qualified names.
fn query_multi(
    model: &TunedModel,
    collectives: &[Collective],
    p: usize,
    sizes: &[&str],
    args: &[String],
) -> Result<(), String> {
    use collsel::select::CollectiveSelector as _;
    if args.iter().any(|a| a == "--degraded") {
        let selector = model.degraded_multi_selector();
        println!(
            "graceful multi-collective selections for {} at P = {p}:",
            model.cluster_name
        );
        for &c in collectives {
            println!("{}:", c.name());
            for s in sizes {
                let m: usize = parse(s, "message size")?;
                let d = selector.decide_for(c, p, m);
                match &d.source {
                    DecisionSource::Model { predicted } => println!(
                        "  m = {m:>9} B -> {:<22} (model, predicted {:.3} ms)",
                        d.selection.alg.qualified_name(),
                        predicted * 1e3,
                    ),
                    DecisionSource::Fallback { reason } => println!(
                        "  m = {m:>9} B -> {:<22} (fixed-rules fallback: {reason})",
                        d.selection.alg.qualified_name(),
                    ),
                }
            }
        }
        return Ok(());
    }
    let selector = model.multi_selector();
    println!(
        "multi-collective selections for {} at P = {p} ({} collective(s) tuned):",
        model.cluster_name,
        model.tuned_collectives().len()
    );
    for &c in collectives {
        println!("{}:", c.name());
        for s in sizes {
            let m: usize = parse(s, "message size")?;
            let pick = selector.select_for(c, p, m);
            let ranking = selector.ranking(c, p, m);
            match ranking.as_slice() {
                [(_, first), (next_alg, next), ..] => println!(
                    "  m = {m:>9} B -> {:<22} (predicted {:.3} ms; next: {} at {:.3} ms)",
                    pick.alg.qualified_name(),
                    first * 1e3,
                    next_alg.name(),
                    next * 1e3,
                ),
                [(_, first)] => println!(
                    "  m = {m:>9} B -> {:<22} (predicted {:.3} ms)",
                    pick.alg.qualified_name(),
                    first * 1e3,
                ),
                [] => println!(
                    "  m = {m:>9} B -> {:<22} (fixed rules: collective not tuned)",
                    pick.alg.qualified_name(),
                ),
            }
        }
    }
    Ok(())
}

fn cmd_show(args: &[String]) -> Result<(), String> {
    validate_flags(args, &["--model"], &[])?;
    let model = load_model(args)?;
    print_tables(&model);
    Ok(())
}

fn cmd_export(args: &[String]) -> Result<(), String> {
    validate_flags(args, &["--model", "--out", "--comm-sizes"], &[])?;
    let model = load_model(args)?;
    let out = flag_value(args, "--out").ok_or("--out required")?;
    let comm_sizes = parse_comm_sizes(args)?;
    let msg_sizes = log_spaced_sizes(1024, 8 * 1024 * 1024, 14);
    let selector = model.selector();
    let table = DecisionTable::generate(&selector, &comm_sizes, &msg_sizes);
    std::fs::write(out, table.to_ompi_rules()).map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!(
        "[colltune] Open MPI dynamic rules for {} written to {out}",
        model.cluster_name
    );
    eprintln!(
        "[colltune] use with: mpirun --mca coll_tuned_use_dynamic_rules 1 \
         --mca coll_tuned_dynamic_rules_filename {out} ..."
    );
    Ok(())
}

/// The deployment comm-size grid: `--comm-sizes A,B,...` or the default
/// powers of two (shared by `export` and `bench-select`).
fn parse_comm_sizes(args: &[String]) -> Result<Vec<usize>, String> {
    match flag_value(args, "--comm-sizes") {
        Some(list) => {
            let mut v = Vec::new();
            for part in list.split(',') {
                v.push(parse(part.trim(), "communicator size")?);
            }
            v.sort_unstable();
            v.dedup();
            Ok(v)
        }
        None => Ok(vec![2, 4, 8, 16, 32, 64, 128]),
    }
}

/// Draws one (p, m) query point without modulo bias: `p` uniform over
/// `2..=max_p`, `m` a uniform power of two over `1 KiB..=8 MiB` (the
/// serving grids' 14 decades). Shared by both bench-select paths so
/// the broadcast and multi-collective benches sample the same
/// distribution.
fn sample_query(rng_state: &mut u64, max_p: usize) -> (usize, usize) {
    let p = 2 + collsel_support::rng::splitmix64_below(rng_state, (max_p - 1) as u64) as usize;
    let m = 1024usize << collsel_support::rng::splitmix64_below(rng_state, 14);
    (p, m)
}

fn cmd_bench_select(args: &[String]) -> Result<(), String> {
    validate_flags(
        args,
        &[
            "--model",
            "--queries",
            "--cache",
            "--seed",
            "--comm-sizes",
            "--collective",
        ],
        &[],
    )?;
    let model = load_model(args)?;
    let queries: usize = parse(flag_value(args, "--queries").unwrap_or("200000"), "queries")?;
    let cache: usize = parse(flag_value(args, "--cache").unwrap_or("4096"), "cache size")?;
    let seed: u64 = parse(flag_value(args, "--seed").unwrap_or("3492237"), "seed")?;
    if queries == 0 || cache == 0 {
        return Err("--queries and --cache must be at least 1".into());
    }
    let comm_sizes = parse_comm_sizes(args)?;
    let msg_sizes = log_spaced_sizes(1024, 8 * 1024 * 1024, 14);
    let collectives = parse_collectives(args)?;
    if !collectives.is_empty() {
        return bench_select_multi(
            &model,
            &collectives,
            queries,
            cache,
            seed,
            &comm_sizes,
            &msg_sizes,
        );
    }
    let live = model.selector();
    let compiled = model.compiled_selector(&comm_sizes, &msg_sizes);
    let service = DecisionService::compiled(compiled.clone()).with_cache(cache, seed);

    // A fixed working set of distinct queries, cycled through: realistic
    // for an application hammering the same communicators and message
    // sizes, and what gives the cached path something to hit.
    let mut rng_state = seed;
    let max_p = comm_sizes.last().copied().unwrap_or(128).max(2);
    let working_set: Vec<(usize, usize)> = (0..1024)
        .map(|_| sample_query(&mut rng_state, max_p))
        .collect();
    let stream = |i: usize| working_set[i % working_set.len()];

    let time = |mut f: Box<dyn FnMut(usize) + '_>| -> f64 {
        let start = std::time::Instant::now();
        for i in 0..queries {
            f(i);
        }
        queries as f64 / start.elapsed().as_secs_f64()
    };
    let live_qps = time(Box::new(|i| {
        let (p, m) = stream(i);
        std::hint::black_box(live.ranking(p, m));
    }));
    let compiled_qps = time(Box::new(|i| {
        let (p, m) = stream(i);
        std::hint::black_box(compiled.lookup(p, m));
    }));
    let cached_qps = time(Box::new(|i| {
        let (p, m) = stream(i);
        std::hint::black_box(service.decide(p, m));
    }));
    let stats = service.stats();
    println!(
        "decision-serving throughput for {} ({queries} queries, {} distinct):",
        model.cluster_name,
        working_set.len()
    );
    println!("  live ranking : {live_qps:>12.0} queries/s");
    println!(
        "  compiled     : {compiled_qps:>12.0} queries/s ({:.1}x live; {} rules, {} comm blocks)",
        compiled_qps / live_qps,
        compiled.rule_count(),
        compiled.comm_block_count()
    );
    println!(
        "  cached       : {cached_qps:>12.0} queries/s ({:.1}x live; hit rate {:.1}%, \
         {} entries resident)",
        cached_qps / live_qps,
        100.0 * stats.hit_rate(),
        service.cached_entries()
    );
    Ok(())
}

/// `bench-select --collective ...`: the multi-collective serving stack
/// under the same live/compiled/cached comparison, with the collective
/// as a third query dimension.
fn bench_select_multi(
    model: &TunedModel,
    collectives: &[Collective],
    queries: usize,
    cache: usize,
    seed: u64,
    comm_sizes: &[usize],
    msg_sizes: &[usize],
) -> Result<(), String> {
    let tuned = model.tuned_collectives();
    for &c in collectives {
        if !tuned.contains(&c) {
            return Err(format!(
                "collective `{}` has no fits in this model; re-tune with \
                 `colltune tune --collective {}`",
                c.name(),
                c.name()
            ));
        }
    }
    let live = model.multi_selector();
    let compiled = model.compiled_multi_selector(comm_sizes, msg_sizes);
    let service = CollectiveDecisionService::compiled(compiled.clone()).with_cache(cache, seed);

    // The working set gains a collective dimension; otherwise identical
    // in spirit to the broadcast bench.
    let mut rng_state = seed;
    let max_p = comm_sizes.last().copied().unwrap_or(128).max(2);
    let working_set: Vec<(Collective, usize, usize)> = (0..1024)
        .map(|_| {
            let c = collectives[collsel_support::rng::splitmix64_below(
                &mut rng_state,
                collectives.len() as u64,
            ) as usize];
            let (p, m) = sample_query(&mut rng_state, max_p);
            (c, p, m)
        })
        .collect();
    let stream = |i: usize| working_set[i % working_set.len()];

    let time = |mut f: Box<dyn FnMut(usize) + '_>| -> f64 {
        let start = std::time::Instant::now();
        for i in 0..queries {
            f(i);
        }
        queries as f64 / start.elapsed().as_secs_f64()
    };
    let live_qps = time(Box::new(|i| {
        let (c, p, m) = stream(i);
        std::hint::black_box(live.ranking(c, p, m));
    }));
    let compiled_qps = time(Box::new(|i| {
        let (c, p, m) = stream(i);
        std::hint::black_box(compiled.lookup(c, p, m));
    }));
    let cached_qps = time(Box::new(|i| {
        let (c, p, m) = stream(i);
        std::hint::black_box(service.decide(c, p, m));
    }));
    let stats = service.stats();
    println!(
        "multi-collective decision-serving throughput for {} \
         ({queries} queries over {} collective(s), {} distinct):",
        model.cluster_name,
        collectives.len(),
        working_set.len()
    );
    println!("  live ranking : {live_qps:>12.0} queries/s");
    println!(
        "  compiled     : {compiled_qps:>12.0} queries/s ({:.1}x live; {} rules)",
        compiled_qps / live_qps,
        compiled.rule_count(),
    );
    println!(
        "  cached       : {cached_qps:>12.0} queries/s ({:.1}x live; hit rate {:.1}%, \
         {} entries resident)",
        cached_qps / live_qps,
        100.0 * stats.hit_rate(),
        service.cached_entries()
    );
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    validate_flags(
        args,
        &[
            "--model",
            "--trace",
            "--gen",
            "--preset",
            "--world",
            "--steps",
            "--seed",
            "--backend",
            "--selector",
            "--json",
            "--csv",
        ],
        &[],
    )?;
    let backend = parse_backend(args)?;
    let cluster = match flag_value(args, "--preset") {
        Some("grisou") => ClusterModel::grisou(),
        Some("gros") | None => ClusterModel::gros(),
        Some(other) => return Err(format!("unknown preset `{other}`")),
    };
    let seed: u64 = parse(flag_value(args, "--seed").unwrap_or("42"), "seed")?;
    let trace = match (flag_value(args, "--trace"), flag_value(args, "--gen")) {
        (Some(_), Some(_)) => {
            return Err("--trace and --gen are mutually exclusive".into());
        }
        (Some(path), None) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let json = collsel_support::Json::parse(&text)
                .map_err(|e| format!("cannot parse {path}: {e}"))?;
            let trace: Trace = collsel_support::FromJson::from_json(&json)
                .map_err(|e| format!("cannot parse {path}: {e}"))?;
            trace
                .validate()
                .map_err(|e| format!("invalid trace {path}: {e}"))?;
            trace
        }
        (None, Some(spec)) => {
            let preset = TracePreset::parse(spec)
                .ok_or_else(|| format!("unknown trace preset `{spec}` (dp or pp)"))?;
            let world: usize = match flag_value(args, "--world") {
                Some(s) => parse(s, "world size")?,
                None => match preset {
                    TracePreset::DataParallel => 12,
                    TracePreset::Pipeline => 8,
                },
            };
            if world < 2 {
                return Err("--world must be at least 2".into());
            }
            let steps: usize = parse(flag_value(args, "--steps").unwrap_or("8"), "step count")?;
            if steps == 0 {
                return Err("--steps must be at least 1".into());
            }
            TraceGen {
                preset,
                world,
                steps,
                seed,
            }
            .generate()
        }
        (None, None) => return Err("--trace FILE or --gen dp|pp required".into()),
    };
    if trace.world > cluster.max_ranks() {
        return Err(format!(
            "trace `{}` needs {} ranks but {} supports at most {}",
            trace.name,
            trace.world,
            cluster.name(),
            cluster.max_ranks()
        ));
    }

    let model = match flag_value(args, "--model") {
        Some(path) => Some(load_model_path(path)?),
        None => None,
    };
    let mut names: Vec<&str> = Vec::new();
    for v in flag_values(args, "--selector") {
        let expand: &[&str] = match v {
            "all" => &["fixed", "tuned", "worst", "server"],
            "fixed" => &["fixed"],
            "tuned" => &["tuned"],
            "worst" => &["worst"],
            "server" => &["server"],
            other => {
                return Err(format!(
                    "unknown selector `{other}` (fixed, tuned, worst, server, all)"
                ))
            }
        };
        for n in expand {
            if !names.contains(n) {
                names.push(n);
            }
        }
    }
    if names.is_empty() {
        names = if model.is_some() {
            vec!["tuned", "fixed", "worst"]
        } else {
            vec!["fixed"]
        };
    }
    let selector = model.as_ref().map(|m| m.multi_selector());
    let server = if names.contains(&"server") {
        let m = model.as_ref().ok_or("--selector server needs --model")?;
        Some(DecisionServer::new(
            &m.degraded_multi_selector(),
            &m.cluster_name,
            ServerConfig::default(),
        ))
    } else {
        None
    };
    let mut policies = Vec::new();
    for n in &names {
        policies.push(match *n {
            "fixed" => ReplayPolicy::Fixed,
            "tuned" => {
                ReplayPolicy::Tuned(selector.as_ref().ok_or("--selector tuned needs --model")?)
            }
            "worst" => {
                ReplayPolicy::Worst(selector.as_ref().ok_or("--selector worst needs --model")?)
            }
            "server" => {
                ReplayPolicy::Server(server.as_ref().ok_or("--selector server needs --model")?)
            }
            _ => unreachable!("selector names validated above"),
        });
    }

    eprintln!(
        "[colltune] replaying `{}` on {}: {} steps / {} calls over {} groups, {} backend",
        trace.name,
        cluster.name(),
        trace.steps.len(),
        trace.total_calls(),
        trace.groups.len(),
        backend_name(backend)
    );
    let outcomes = score_policies(&cluster, &trace, &policies, backend, seed)
        .map_err(|e| format!("replay failed: {e}"))?;
    let best = outcomes
        .iter()
        .min_by_key(|o| o.jct_ns)
        .cloned()
        .ok_or("no policies to replay")?;
    println!(
        "JCT comparison for `{}` on {} ({} steps):",
        trace.name,
        cluster.name(),
        trace.steps.len()
    );
    for o in &outcomes {
        println!(
            "  {:<7} {:>12.3} ms  (+{:.2}% vs best; {} lookups, {} messages, {} bytes)",
            o.selector,
            o.jct_s * 1e3,
            degradation_pct(o, &best),
            o.lookups,
            o.messages,
            o.bytes
        );
    }
    println!("best: {}", best.selector);
    if let Some(path) = flag_value(args, "--json") {
        collsel_support::bench::write_artifact(path, &comparison_json(cluster.name(), &outcomes))?;
        eprintln!("[colltune] JCT comparison written to {path}");
    }
    if let Some(path) = flag_value(args, "--csv") {
        std::fs::write(path, comparison_csv(&outcomes))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("[colltune] CSV written to {path}");
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    validate_flags(
        args,
        &[
            "--preset",
            "--tune-p",
            "--queries",
            "--threads",
            "--refits",
            "--poison-every",
            "--seed",
            "--faults",
            "--journal",
            "--json",
        ],
        &[],
    )?;
    let mut config = SoakConfig::quick();
    match flag_value(args, "--preset") {
        Some("grisou") => config.cluster = ClusterModel::grisou().with_noise(NoiseParams::OFF),
        Some("gros") | None => {}
        Some(other) => return Err(format!("unknown preset `{other}`")),
    }
    if let Some(s) = flag_value(args, "--tune-p") {
        config.tune_p = parse(s, "tune-p")?;
    }
    if let Some(s) = flag_value(args, "--queries") {
        config.queries = parse(s, "query count")?;
    }
    if let Some(s) = flag_value(args, "--threads") {
        config.threads = parse(s, "thread count")?;
        if config.threads == 0 {
            return Err("--threads must be at least 1".into());
        }
    }
    if let Some(s) = flag_value(args, "--refits") {
        config.refits = parse(s, "refit count")?;
    }
    if let Some(s) = flag_value(args, "--poison-every") {
        config.poison_every = parse(s, "poison period")?;
    }
    if let Some(s) = flag_value(args, "--seed") {
        config.seed = parse(s, "seed")?;
    }
    if let Some(spec) = flag_value(args, "--faults") {
        config.server.faults = FaultPlan::parse(spec, config.cluster.nodes())?;
    }
    let journal = flag_value(args, "--journal");
    if let Some(path) = journal {
        config.server.journal = Some(std::path::PathBuf::from(path));
    }

    eprintln!(
        "[colltune] soaking the decision server on {}: {} queries / {} readers, \
         {} refits (every {} poisoned), faults: {}",
        config.cluster.name(),
        config.queries,
        config.threads,
        config.refits,
        if config.poison_every == 0 {
            "none".to_string()
        } else {
            format!("{}th", config.poison_every)
        },
        config.server.faults
    );
    let report = run_soak(&config);
    println!(
        "served {} queries in {:.2}s ({:.0} queries/s sustained, p99 {} ns)",
        report.queries, report.duration_s, report.qps, report.p99_latency_ns
    );
    println!(
        "hot swaps: {} installed (mean {:.0} ns, worst {} ns); refits rejected \
         by the health gate: {}",
        report.swaps, report.swap_nanos_mean, report.swap_nanos_max, report.rejected_refits
    );
    println!(
        "fallbacks: {} ({:.2}% of answers; {} previous-generation, {} rules-after-timeout, \
         {} rules-uncovered)",
        report.fallbacks,
        100.0 * report.fallback_rate,
        report.stats.served_previous_timeout,
        report.stats.served_rules_timeout,
        report.stats.served_rules_uncovered
    );
    if let Some(path) = flag_value(args, "--json") {
        collsel_support::bench::write_artifact(path, &collsel_support::ToJson::to_json(&report))?;
        eprintln!("[colltune] soak report written to {path}");
    }

    // With a journal, demonstrate crash-only recovery: rebuild a server
    // from the journalled last-good generation, with no shutdown
    // handshake, and check it resumes at the final installed version.
    if journal.is_some() {
        let recovered = DecisionServer::recover(config.server.clone())
            .map_err(|e| format!("journal recovery failed: {e}"))?;
        let expected = 1 + report.swaps;
        if recovered.version() != expected {
            return Err(format!(
                "journal recovery resumed at generation {} instead of {expected}",
                recovered.version()
            ));
        }
        let probe = recovered.decide(Collective::Bcast, 16, 64 * 1024);
        println!(
            "journal recovery: resumed at generation {} (probe answer {} from epoch {})",
            recovered.version(),
            probe.selection.alg.qualified_name(),
            probe.epoch
        );
    }

    if !report.passed() {
        for v in &report.violations {
            eprintln!("[colltune] INVARIANT VIOLATION: {v}");
        }
        return Err(format!(
            "soak failed with {} invariant violation(s)",
            report.violations.len()
        ));
    }
    println!("soak invariants: all held (zero torn or unattributed answers)");
    Ok(())
}

fn print_tables(model: &TunedModel) {
    println!("cluster: {}", model.cluster_name);
    println!("gamma(P):");
    for (p, g) in model.gamma.table.pairs() {
        println!("  {p}: {g:.3}");
    }
    println!("per-algorithm parameters:");
    for (alg, h) in model.hockney_table() {
        println!("  {:<12} {}", alg.name(), h);
    }
    if !model.collectives.is_empty() {
        println!("per-collective parameters:");
        for (alg, h) in model.multi_hockney_table() {
            println!("  {:<22} {}", alg.qualified_name(), h);
        }
    }
}
