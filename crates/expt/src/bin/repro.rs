//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--out DIR] [--seed N] [TARGET...]
//! TARGET: fig1 | table1 | table2 | fig5 | table3 | all (default)
//! ```
//!
//! `--quick` runs reduced scales (seconds); without it the paper's full
//! scales run (minutes in release mode). Artifacts (text/CSV/JSON) are
//! written under `--out` (default `results/`).

use collsel_expt::report::ArtifactSink;
use collsel_expt::{fig1, fig5, scenarios, table1, table2, table3, Fidelity};
use std::collections::BTreeSet;
use std::process::ExitCode;

const USAGE: &str =
    "usage: repro [--quick] [--out DIR] [--seed N] [fig1|table1|table2|fig5|table3|all]...";

fn main() -> ExitCode {
    let mut fidelity = Fidelity::Paper;
    let mut out_dir = String::from("results");
    let mut seed: u64 = 0xC0115E1;
    let mut targets: BTreeSet<String> = BTreeSet::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => fidelity = Fidelity::Quick,
            "--out" => match args.next() {
                Some(dir) => out_dir = dir,
                None => {
                    eprintln!("--out needs a directory\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed needs an integer\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            t @ ("fig1" | "table1" | "table2" | "fig5" | "table3" | "all") => {
                targets.insert(t.to_owned());
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    if targets.is_empty() || targets.contains("all") {
        targets = ["fig1", "table1", "table2", "fig5", "table3"]
            .into_iter()
            .map(str::to_owned)
            .collect();
    }

    let sink = match ArtifactSink::new(&out_dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot create output directory {out_dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scs = scenarios(fidelity);

    let emit = |name: &str, text: &str, csv: &str, json: &dyn erased::Json| {
        println!("{text}");
        let r = sink
            .write_text(&format!("{name}.txt",), text)
            .and_then(|()| sink.write_text(&format!("{name}.csv"), csv))
            .and_then(|()| json.write(&sink, &format!("{name}.json")));
        if let Err(e) = r {
            eprintln!("warning: failed to write {name} artifacts: {e}");
        }
    };

    if targets.contains("fig1") {
        eprintln!("[repro] running fig1...");
        let grisou = &scs[0];
        // Invariant: scenarios() always populates fig5_ps for both
        // fidelities; an empty panel list is a bug in `scenarios`.
        let p = *grisou.fig5_ps.last().expect("non-empty panel list");
        let f1 = fig1::run_fig1(grisou, p, seed);
        emit("fig1", &f1.to_text(), &f1.to_csv(), &f1);
    }

    if targets.contains("table1") {
        eprintln!("[repro] running table1...");
        let cfg = scs[0].tuner_config(fidelity).gamma;
        let t1 = table1::run_table1(&scs, &cfg, seed);
        emit("table1", &t1.to_text(), &t1.to_csv(), &t1);
    }

    let need_tuned =
        targets.contains("table2") || targets.contains("fig5") || targets.contains("table3");
    let t2 = need_tuned.then(|| {
        eprintln!("[repro] tuning both clusters (table2)...");
        table2::run_table2(&scs, fidelity)
    });
    if let Some(t2) = &t2 {
        if targets.contains("table2") {
            emit("table2", &t2.to_text(), &t2.to_csv(), t2);
        }
    }

    let need_fig5 = targets.contains("fig5") || targets.contains("table3");
    if need_fig5 {
        eprintln!("[repro] running fig5 sweeps...");
        // Invariant: need_fig5 implies need_tuned above, so the tuned
        // models were computed on this path.
        let t2 = t2.as_ref().expect("tuned models exist");
        let f5 = fig5::run_fig5(&scs, &t2.models, seed.wrapping_add(55));
        if targets.contains("fig5") {
            emit("fig5", &f5.to_text(), &f5.to_csv(), &f5);
        }
        if targets.contains("table3") {
            let featured: Vec<(String, usize)> = scs
                .iter()
                .map(|sc| (sc.cluster.name().to_owned(), sc.table3_p))
                .collect();
            let t3 = table3::table3_from_fig5(&f5, &featured);
            emit("table3", &t3.to_text(), &t3.to_csv(), &t3);
        }
    }

    eprintln!("[repro] artifacts written to {out_dir}/");
    ExitCode::SUCCESS
}

/// Tiny object-safe serialisation shim so `emit` can take any result.
mod erased {
    use collsel_expt::report::ArtifactSink;
    use collsel_support::ToJson;
    use std::io;

    pub trait Json {
        fn write(&self, sink: &ArtifactSink, name: &str) -> io::Result<()>;
    }

    impl<T: ToJson> Json for T {
        fn write(&self, sink: &ArtifactSink, name: &str) -> io::Result<()> {
            sink.write_json(name, self)
        }
    }
}
