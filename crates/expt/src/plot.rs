//! Minimal ASCII chart rendering for the figure artifacts.
//!
//! The paper's Fig. 1 and Fig. 5 are log-log plots of execution time vs
//! message size. [`ascii_chart`] renders the same series as a
//! fixed-size character grid so the text artifacts read as figures, not
//! just tables.

/// One plotted series: a label, a marker character, and (x, y) points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Marker drawn at each point.
    pub marker: char,
    /// Data points (x, y); both axes are rendered logarithmically, so
    /// values must be positive.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is non-positive or non-finite.
    pub fn new(label: impl Into<String>, marker: char, points: Vec<(f64, f64)>) -> Self {
        assert!(
            points
                .iter()
                .all(|&(x, y)| x > 0.0 && y > 0.0 && x.is_finite() && y.is_finite()),
            "log-log chart needs positive finite coordinates"
        );
        Series {
            label: label.into(),
            marker,
            points,
        }
    }
}

/// Renders series on a `width`×`height` log-log grid with a legend.
/// Later series overwrite earlier ones where markers collide.
///
/// # Panics
///
/// Panics if no series has any points, or the grid is degenerate
/// (`width`/`height` < 2).
pub fn ascii_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 2 && height >= 2, "grid too small");
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.clone()).collect();
    assert!(!all.is_empty(), "nothing to plot");
    let (mut x_lo, mut x_hi) = (f64::MAX, f64::MIN);
    let (mut y_lo, mut y_hi) = (f64::MAX, f64::MIN);
    for &(x, y) in &all {
        x_lo = x_lo.min(x);
        x_hi = x_hi.max(x);
        y_lo = y_lo.min(y);
        y_hi = y_hi.max(y);
    }
    // Avoid zero spans (single point or flat series).
    if x_lo == x_hi {
        x_hi *= 2.0;
    }
    if y_lo == y_hi {
        y_hi *= 2.0;
    }
    let (lx_lo, lx_hi) = (x_lo.log10(), x_hi.log10());
    let (ly_lo, ly_hi) = (y_lo.log10(), y_hi.log10());
    let col = |x: f64| {
        (((x.log10() - lx_lo) / (lx_hi - lx_lo) * (width - 1) as f64).round() as usize)
            .min(width - 1)
    };
    let row = |y: f64| {
        let r = ((y.log10() - ly_lo) / (ly_hi - ly_lo) * (height - 1) as f64).round() as usize;
        (height - 1) - r.min(height - 1)
    };

    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        for &(x, y) in &s.points {
            grid[row(y)][col(x)] = s.marker;
        }
    }

    let mut lines = Vec::with_capacity(height + 3);
    lines.push(format!("{title}  (log-log)"));
    for (i, grid_row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_hi:9.2e} |")
        } else if i == height - 1 {
            format!("{y_lo:9.2e} |")
        } else {
            format!("{:9} |", "")
        };
        let mut line: String = grid_row.iter().collect();
        while line.ends_with(' ') {
            line.pop();
        }
        lines.push(format!("{label}{line}"));
    }
    lines.push(format!("{:9} +{}", "", "-".repeat(width)));
    lines.push(format!("{:9}  {x_lo:<12.0} ... {x_hi:>12.0} (bytes)", ""));
    let legend: Vec<String> = series
        .iter()
        .map(|s| format!("{} {}", s.marker, s.label))
        .collect();
    lines.push(format!("{:9}  legend: {}", "", legend.join("   ")));
    lines.join("\n") + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Vec<Series> {
        vec![
            Series::new(
                "a",
                'o',
                (0..8)
                    .map(|i| (1e3 * 2f64.powi(i), 1e-4 * 1.5f64.powi(i)))
                    .collect(),
            ),
            Series::new(
                "b",
                'x',
                (0..8)
                    .map(|i| (1e3 * 2f64.powi(i), 2e-4 * 1.2f64.powi(i)))
                    .collect(),
            ),
        ]
    }

    #[test]
    fn chart_contains_markers_and_legend() {
        let c = ascii_chart("Fig. X", &series(), 60, 14);
        assert!(c.contains("Fig. X"));
        assert!(c.matches('o').count() >= 6);
        assert!(c.matches('x').count() >= 6);
        assert!(c.contains("legend: o a   x b"));
    }

    #[test]
    fn monotone_series_renders_monotone() {
        // The highest-y point of series a must appear on an earlier
        // line (higher on screen) than its lowest-y point.
        let c = ascii_chart("t", &series()[..1], 40, 10);
        let lines: Vec<&str> = c.lines().collect();
        let first_o = lines.iter().position(|l| l.contains('o')).unwrap();
        let last_o = lines.iter().rposition(|l| l.contains('o')).unwrap();
        assert!(first_o < last_o);
    }

    #[test]
    fn single_point_does_not_panic() {
        let s = Series::new("p", '*', vec![(100.0, 1.0)]);
        let c = ascii_chart("single", &[s], 20, 5);
        assert!(c.contains('*'));
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn rejects_nonpositive_points() {
        let _ = Series::new("bad", '!', vec![(0.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "nothing to plot")]
    fn rejects_empty_chart() {
        let s = Series {
            label: "e".into(),
            marker: '.',
            points: vec![],
        };
        let _ = ascii_chart("t", &[s], 20, 5);
    }
}
