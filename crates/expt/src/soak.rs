//! Chaos soak harness for the [`DecisionServer`]: seeded mixed
//! query/refit traffic under an active [`FaultPlan`], with post-hoc
//! validation of the serving invariants.
//!
//! The soak boots a server from one genuine
//! [`Tuner::try_tune_collectives`] run, then drives it from two sides
//! at once:
//!
//! * **readers** — `threads` OS threads replaying a seeded stream of
//!   `(collective, P, m)` queries, recording for every answer the
//!   generation version observed *before* the call, the answer itself,
//!   and its latency;
//! * **a refit driver** — paced against served-query progress so
//!   installs land *mid-traffic*, submitting perturbed-but-healthy
//!   candidates (which must install) and periodically poisoned ones
//!   (which the health gate must reject), while brown-out windows from
//!   the fault plan sweep over the serving clock.
//!
//! After the threads join, [`run_soak`] checks every recorded answer
//! against the per-version table registry built from the installs:
//!
//! 1. **no torn/dropped answers** — an answer stamped with version `v`
//!    equals `registry[v].lookup(..)` exactly; an answer stamped 0
//!    equals the fixed rules *and* carries a fallback cause;
//! 2. **bounded staleness** — a generation-stamped answer is at most
//!    one version behind the version observed before the call;
//! 3. **every fallback attributed** — the per-source counts the readers
//!    observed reconcile exactly with the server's cause counters.
//!
//! Violations are collected (not asserted) so the harness can report
//! them all; the soak test and the `colltune serve` smoke gate assert
//! the list is empty.

use collsel::coll::{Alg, Collective};
use collsel::estim::RetryPolicy;
use collsel::model::{FitValidity, Hockney};
use collsel::netsim::{Brownout, ClusterModel, FaultPlan, NoiseParams};
use collsel::select::{
    fixed_selection, CollSelection, CompiledCollectiveSelector, DecisionServer,
    GracefulCollectiveSelector, RefitOutcome, ServeSource, ServedAnswer, ServerConfig, ServerStats,
};
use collsel::{Tuner, TunerConfig};
use collsel_support::rng::splitmix64;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Configuration of one soak run.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Cluster the boot generation is tuned on.
    pub cluster: ClusterModel,
    /// Process count of the tuning experiments.
    pub tune_p: usize,
    /// Collectives to genuinely tune for the boot generation (the
    /// server compiles rules for the rest).
    pub collectives: Vec<Collective>,
    /// Reader threads.
    pub threads: usize,
    /// Total queries across all readers.
    pub queries: usize,
    /// Refit submissions from the driver.
    pub refits: usize,
    /// Every `poison_every`-th refit (1-based) is poisoned; 0 disables
    /// poisoning.
    pub poison_every: usize,
    /// Seed of the query stream and the candidate perturbations.
    pub seed: u64,
    /// Server configuration (watchdog, faults, journal, grids).
    pub server: ServerConfig,
}

impl SoakConfig {
    /// The CI-sized soak: a quick tune of two collectives on the Gros
    /// preset, 12 000 queries over 4 readers, 5 refits with every third
    /// poisoned, and three brown-out windows timed to sweep the virtual
    /// serving clock (1 µs healthy lookups, 50× slowdown inside a
    /// window, 10 µs budget — so windowed lookups trip the watchdog).
    pub fn quick() -> SoakConfig {
        let mut server = ServerConfig::default();
        // ~12 ms of virtual time at 1 µs per healthy lookup; windows at
        // 2/5/8 ms each last 0.5 ms ≈ hundreds of faulted queries.
        server.faults = FaultPlan::none()
            .with_brownout(Brownout::new(0, 0.002, 0.0005, 50.0))
            .with_brownout(Brownout::new(0, 0.005, 0.0005, 50.0))
            .with_brownout(Brownout::new(0, 0.008, 0.0005, 50.0));
        SoakConfig {
            cluster: ClusterModel::gros().with_noise(NoiseParams::OFF),
            tune_p: 8,
            collectives: vec![Collective::Bcast, Collective::Reduce],
            threads: 4,
            queries: 12_000,
            refits: 5,
            poison_every: 3,
            seed: 0xC0FFEE,
            server,
        }
    }
}

/// One recorded answer: what a reader saw, for post-hoc validation.
#[derive(Debug, Clone, Copy)]
struct Observation {
    collective: Collective,
    p: usize,
    m: usize,
    /// Generation version read immediately before the query.
    version_before: u64,
    answer: ServedAnswer,
}

/// Outcome of a soak run.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Total answered queries.
    pub queries: u64,
    /// Wall-clock duration of the traffic phase in seconds.
    pub duration_s: f64,
    /// Sustained queries per second across all readers.
    pub qps: f64,
    /// 99th-percentile per-query latency in nanoseconds.
    pub p99_latency_ns: u64,
    /// Completed hot swaps (installed refits).
    pub swaps: u64,
    /// Refits rejected by the health gate (either gate).
    pub rejected_refits: u64,
    /// Answers not served by the current generation.
    pub fallbacks: u64,
    /// Fallback fraction of all answers.
    pub fallback_rate: f64,
    /// Mean wall-clock swap latency in nanoseconds.
    pub swap_nanos_mean: f64,
    /// Worst wall-clock swap latency in nanoseconds.
    pub swap_nanos_max: u64,
    /// The server's own counter snapshot.
    pub stats: ServerStats,
    /// Invariant violations (empty on a passing soak).
    pub violations: Vec<String>,
}

collsel_support::json_struct!(SoakReport {
    queries,
    duration_s,
    qps,
    p99_latency_ns,
    swaps,
    rejected_refits,
    fallbacks,
    fallback_rate,
    swap_nanos_mean,
    swap_nanos_max,
    stats,
    violations
});

impl SoakReport {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Rebuilds a candidate selector from the boot fits with every β
/// scaled by a tiny seeded factor (order-preserving, so the health
/// gate accepts it), or — when `poisoned` — with the per-collective β
/// order reversed (decision-flipping, so the gate must reject it).
fn candidate(
    boot: &BootFits,
    round: usize,
    seed: u64,
    poisoned: bool,
) -> GracefulCollectiveSelector {
    let mut state = seed ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let params: BTreeMap<Alg, Hockney> = if poisoned {
        // Reverse each collective's β ranking: the cheapest algorithm
        // gets the dearest β and vice versa.
        let mut by_coll: BTreeMap<Collective, Vec<(Alg, Hockney)>> = BTreeMap::new();
        for (&alg, &h) in &boot.params {
            by_coll.entry(alg.collective()).or_default().push((alg, h));
        }
        let mut flipped = BTreeMap::new();
        for (_, mut fits) in by_coll {
            fits.sort_by(|a, b| a.1.beta.total_cmp(&b.1.beta));
            let betas: Vec<f64> = fits.iter().rev().map(|(_, h)| h.beta).collect();
            for ((alg, h), beta) in fits.into_iter().zip(betas) {
                flipped.insert(alg, Hockney::new(h.alpha, beta));
            }
        }
        flipped
    } else {
        boot.params
            .iter()
            .map(|(&alg, &h)| {
                // ±0.1 % β jitter: a realistic refit of the same
                // cluster, far inside the health gate's tolerance.
                let u = (splitmix64(&mut state) % 2_000) as f64 / 1_000.0 - 1.0;
                (alg, Hockney::new(h.alpha, h.beta * (1.0 + 1e-3 * u)))
            })
            .collect()
    };
    let validity = params.keys().map(|&a| (a, FitValidity::Valid)).collect();
    let mut selector =
        GracefulCollectiveSelector::new(boot.gamma.clone(), params, validity, boot.seg_size);
    for c in Collective::ALL {
        if c != Collective::Bcast {
            selector = selector.with_seg_size(c, collsel::estim::BREADTH_SEG_SIZE);
        }
    }
    selector
}

/// The boot generation's raw fits, kept for deriving refit candidates.
struct BootFits {
    gamma: collsel::model::GammaTable,
    params: BTreeMap<Alg, Hockney>,
    seg_size: usize,
}

/// Runs one soak (see the module docs). The returned report carries
/// every invariant violation; callers assert [`SoakReport::passed`].
///
/// # Panics
///
/// Panics when the initial tuning itself fails — the soak needs a boot
/// generation to exercise the server at all.
pub fn run_soak(config: &SoakConfig) -> SoakReport {
    // One genuine tune for the boot generation.
    let tuner = Tuner::new(config.cluster.clone(), TunerConfig::quick(config.tune_p));
    let report = tuner
        .try_tune_collectives(&config.collectives, &RetryPolicy::default())
        .expect("soak boot tune must complete");
    let boot_selector = report.degraded_multi_selector();
    let boot = BootFits {
        gamma: report.model.gamma.table.clone(),
        params: report.model.multi_hockney_table(),
        seg_size: report.model.seg_size,
    };

    let server = DecisionServer::new(&boot_selector, config.cluster.name(), config.server.clone());
    // version → tables, the oracle the validator replays answers
    // against. Version 1 is the boot generation.
    let registry: Mutex<BTreeMap<u64, Arc<CompiledCollectiveSelector>>> =
        Mutex::new(BTreeMap::from([(1u64, server.current_tables())]));

    let threads = config.threads.max(1);
    let per_thread = config.queries / threads;
    let refits = config.refits;
    // Query-cohort checkpoints: readers pause at checkpoint `round`
    // until refit `round` has been decided, and the driver waits for
    // every reader to reach it first — so each swap deterministically
    // lands *between* query cohorts, with live traffic on both sides.
    // Both sides compute the same floor, so neither can deadlock.
    let checkpoint = move |round: usize| per_thread * round / (refits + 1);
    let answered = AtomicU64::new(0);
    let rounds_done = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let started = Instant::now();

    let mut observations: Vec<Vec<Observation>> = Vec::new();
    let mut latencies: Vec<Vec<u64>> = Vec::new();
    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for t in 0..threads {
            let server = &server;
            let answered = &answered;
            let rounds_done = &rounds_done;
            let mut state = config.seed ^ ((t as u64 + 1) << 32);
            readers.push(scope.spawn(move || {
                let mut obs = Vec::with_capacity(per_thread);
                let mut lat = Vec::with_capacity(per_thread);
                let mut next_round = 1usize;
                for j in 0..per_thread {
                    while next_round <= refits && j == checkpoint(next_round) {
                        while rounds_done.load(Ordering::Acquire) < next_round as u64 {
                            std::thread::yield_now();
                        }
                        next_round += 1;
                    }
                    let c = Collective::ALL[(splitmix64(&mut state) % 7) as usize];
                    let p = 2 + (splitmix64(&mut state) % 127) as usize;
                    let m = 1024usize << (splitmix64(&mut state) % 14);
                    let version_before = server.version();
                    let t0 = Instant::now();
                    let answer = server.decide(c, p, m);
                    lat.push(t0.elapsed().as_nanos() as u64);
                    answered.fetch_add(1, Ordering::Release);
                    obs.push(Observation {
                        collective: c,
                        p,
                        m,
                        version_before,
                        answer,
                    });
                }
                (obs, lat)
            }));
        }

        // Refit driver: waits for every reader to reach the round's
        // checkpoint, submits, then releases them.
        let driver = scope.spawn(|| {
            for round in 1..=refits {
                let gate = (checkpoint(round) * threads) as u64;
                while answered.load(Ordering::Acquire) < gate {
                    std::thread::yield_now();
                }
                let poisoned = config.poison_every != 0 && round % config.poison_every == 0;
                let cand = candidate(&boot, round, config.seed, poisoned);
                match server.submit_refit(&cand, &format!("refit {round}")) {
                    RefitOutcome::Installed { epoch, tables } => {
                        registry
                            .lock()
                            .expect("registry lock")
                            .insert(epoch, tables);
                    }
                    RefitOutcome::RejectedInvalidFit { .. }
                    | RefitOutcome::RejectedRegression { .. } => {
                        rejected.fetch_add(1, Ordering::Relaxed);
                    }
                }
                rounds_done.store(round as u64, Ordering::Release);
            }
        });

        for r in readers {
            let (obs, lat) = r.join().expect("reader thread");
            observations.push(obs);
            latencies.push(lat);
        }
        driver.join().expect("refit driver");
    });
    let duration_s = started.elapsed().as_secs_f64();

    // Post-hoc invariant validation.
    let registry = registry.into_inner().expect("registry lock");
    let final_version = server.version();
    let mut violations = Vec::new();
    let mut counted = BTreeMap::from([
        (ServeSource::Current, 0u64),
        (ServeSource::PreviousAfterTimeout, 0u64),
        (ServeSource::RulesAfterTimeout, 0u64),
        (ServeSource::RulesUncovered, 0u64),
    ]);
    let check = |ok: bool, violations: &mut Vec<String>, msg: String| {
        if !ok && violations.len() < 32 {
            violations.push(msg);
        }
    };
    for obs in observations.iter().flatten() {
        let Observation {
            collective: c,
            p,
            m,
            version_before,
            answer,
        } = *obs;
        *counted.entry(answer.source).or_default() += 1;
        if answer.epoch == 0 {
            // Rules answers must carry a cause and match the rules.
            check(
                answer.source.is_fallback(),
                &mut violations,
                format!("rules answer without a cause at {c} p={p} m={m}"),
            );
            check(
                answer.selection == fixed_selection(c, p, m),
                &mut violations,
                format!("rules answer does not match the fixed rules at {c} p={p} m={m}"),
            );
            continue;
        }
        // Generation-stamped answers must match that generation's
        // tables exactly: a torn read (half pre-swap, half post-swap)
        // or a reclaimed-too-early generation cannot produce this.
        match registry.get(&answer.epoch) {
            None => check(
                false,
                &mut violations,
                format!("answer stamped with unknown generation {}", answer.epoch),
            ),
            Some(tables) => {
                let expect: CollSelection = tables.lookup(c, p, m);
                check(
                    answer.selection == expect,
                    &mut violations,
                    format!(
                        "torn answer at {c} p={p} m={m}: got {:?} from generation {}, \
                         which serves {expect:?}",
                        answer.selection, answer.epoch
                    ),
                );
            }
        }
        // Bounded staleness: at most one generation behind the version
        // observed before the call (the watchdog's retry tier).
        check(
            answer.epoch + 1 >= version_before,
            &mut violations,
            format!(
                "stale answer at {c} p={p} m={m}: generation {} served while {} was current",
                answer.epoch, version_before
            ),
        );
        check(
            answer.epoch <= final_version,
            &mut violations,
            format!("answer from future generation {}", answer.epoch),
        );
    }
    // Fallback accounting: the readers' per-source tallies reconcile
    // exactly with the server's cause counters — no fallback happened
    // without its counter recording why.
    let stats = server.stats();
    for (source, observed, recorded) in [
        (
            ServeSource::Current,
            counted[&ServeSource::Current],
            stats.served_current,
        ),
        (
            ServeSource::PreviousAfterTimeout,
            counted[&ServeSource::PreviousAfterTimeout],
            stats.served_previous_timeout,
        ),
        (
            ServeSource::RulesAfterTimeout,
            counted[&ServeSource::RulesAfterTimeout],
            stats.served_rules_timeout,
        ),
        (
            ServeSource::RulesUncovered,
            counted[&ServeSource::RulesUncovered],
            stats.served_rules_uncovered,
        ),
    ] {
        if observed != recorded {
            violations.push(format!(
                "cause counter mismatch for {source:?}: readers saw {observed}, \
                 server recorded {recorded}"
            ));
        }
    }

    let mut all_lat: Vec<u64> = latencies.into_iter().flatten().collect();
    all_lat.sort_unstable();
    let p99 = if all_lat.is_empty() {
        0
    } else {
        all_lat[(all_lat.len() - 1).min(all_lat.len() * 99 / 100)]
    };
    let queries = stats.queries();
    SoakReport {
        queries,
        duration_s,
        qps: if duration_s > 0.0 {
            queries as f64 / duration_s
        } else {
            0.0
        },
        p99_latency_ns: p99,
        swaps: stats.swaps,
        rejected_refits: rejected.load(Ordering::Relaxed),
        fallbacks: stats.fallbacks(),
        fallback_rate: stats.fallback_rate(),
        swap_nanos_mean: stats.swap_nanos_mean,
        swap_nanos_max: stats.swap_nanos_max,
        stats,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature soak: every invariant holds, the health gate
    /// rejects the poisoned refit, and the watchdog attributes its
    /// brown-out fallbacks. The full-size soak lives in `tests/soak.rs`.
    #[test]
    fn mini_soak_passes_all_invariants() {
        let mut config = SoakConfig::quick();
        config.queries = 2_000;
        config.threads = 2;
        config.refits = 3;
        // ~2 ms of virtual traffic: one window at 0.5 ms.
        config.server.faults =
            FaultPlan::none().with_brownout(Brownout::new(0, 0.0005, 0.0005, 50.0));
        let report = run_soak(&config);
        assert!(report.passed(), "soak violations: {:#?}", report.violations);
        assert_eq!(report.queries, 2_000);
        assert!(report.swaps >= 2, "two healthy refits must install");
        assert_eq!(report.rejected_refits, 1, "poisoned refit rejected");
        assert!(report.fallbacks > 0, "brown-out must trip the watchdog");
    }

    #[test]
    fn report_round_trips_through_json() {
        use collsel_support::{FromJson, Json, ToJson};
        let report = SoakReport {
            queries: 10,
            duration_s: 0.5,
            qps: 20.0,
            p99_latency_ns: 1_200,
            swaps: 3,
            rejected_refits: 1,
            fallbacks: 2,
            fallback_rate: 0.2,
            swap_nanos_mean: 800.0,
            swap_nanos_max: 1_000,
            stats: ServerStats::default(),
            violations: vec!["example".to_string()],
        };
        let text = report.to_json().to_string_pretty();
        let back = SoakReport::from_json(&Json::parse(&text).expect("parses")).expect("decodes");
        assert_eq!(back.queries, 10);
        assert_eq!(back.violations, vec!["example".to_string()]);
    }
}
