//! Per-collective selection comparison — the Table 3 methodology
//! widened to the full collective breadth: for every `(collective, m)`
//! cell at one process count, the measured best algorithm of the
//! family, the model-based multi selector's pick, and the fixed-rules
//! pick, with percentage degradations vs best.
//!
//! Like [`sweep`](crate::sweep), the whole
//! (collective × message size × algorithm) grid — plus the extra cells
//! for picks whose segment size differs from the grid's — is flattened
//! into a single batch over the current [`Pool`], with per-cell seeds
//! derived from grid position, so the report is bit-identical at any
//! thread count and on either backend.

use crate::report::{format_csv, format_table, size_label};
use collsel::coll::{Alg, Collective};
use collsel::estim::measure::{collective_time_batch_with, CollectiveSpec};
use collsel::estim::Precision;
use collsel::mpi::Backend;
use collsel::netsim::ClusterModel;
use collsel::select::analysis::{summarise, SelectorSummary};
use collsel::select::{fixed_selection, CollSelection, CollectiveSelector};
use collsel::TunedModel;
use collsel_support::pool::Pool;
use std::collections::BTreeMap;

/// Everything measured and decided at one `(collective, m)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct BreadthPoint {
    /// Message size in bytes ([`run_collective`]'s convention: total
    /// vector for rooted/reduction collectives, per-rank block for the
    /// all-to-all family).
    ///
    /// [`run_collective`]: collsel::coll::run_collective
    pub m: usize,
    /// Measured mean time of every algorithm of the family at the
    /// report's fixed segment size.
    pub times: BTreeMap<Alg, f64>,
    /// The measured best algorithm at the fixed segment size.
    pub best: Alg,
    /// Its time in seconds.
    pub best_time: f64,
    /// The model-based multi selector's pick.
    pub model_pick: CollSelection,
    /// Measured time of the model pick (at its own segment size when it
    /// differs from the grid's).
    pub model_time: f64,
    /// The fixed-rules pick.
    pub fixed_pick: CollSelection,
    /// Measured time of the fixed-rules pick.
    pub fixed_time: f64,
}

impl BreadthPoint {
    /// Degradation of the model-based pick vs best, percent.
    pub fn model_degradation_pct(&self) -> f64 {
        100.0 * (self.model_time - self.best_time) / self.best_time
    }

    /// Degradation of the fixed-rules pick vs best, percent.
    pub fn fixed_degradation_pct(&self) -> f64 {
        100.0 * (self.fixed_time - self.best_time) / self.best_time
    }
}

/// One collective's column: its message-size sweep plus summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct BreadthColumn {
    /// The collective.
    pub collective: Collective,
    /// One point per message size, ascending.
    pub points: Vec<BreadthPoint>,
    /// Summary of the model-based degradations.
    pub model_summary: SelectorSummary,
    /// Summary of the fixed-rules degradations.
    pub fixed_summary: SelectorSummary,
}

/// The per-collective comparison report.
#[derive(Debug, Clone, PartialEq)]
pub struct BreadthResult {
    /// Cluster name.
    pub cluster: String,
    /// Process count of the report.
    pub p: usize,
    /// Fixed segment size of the grid measurements.
    pub seg_size: usize,
    /// One column per requested collective.
    pub columns: Vec<BreadthColumn>,
}

/// `MPI_Allreduce`-style display label of a collective.
fn mpi_label(c: Collective) -> String {
    let name = c.name();
    let mut out = String::from("MPI_");
    let mut chars = name.chars();
    if let Some(first) = chars.next() {
        out.extend(first.to_uppercase());
    }
    out.push_str(chars.as_str());
    out
}

impl BreadthResult {
    /// Renders the aligned text tables (one block per collective).
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "Breadth — per-collective selections vs the measured best\n\
             (P = {}, {}; degradation vs best, in percent, in parentheses)\n",
            self.p, self.cluster
        );
        for col in &self.columns {
            out.push_str(&format!("\n{}\n", mpi_label(col.collective)));
            let rows: Vec<Vec<String>> = col
                .points
                .iter()
                .map(|pt| {
                    vec![
                        size_label(pt.m),
                        pt.best.name().to_owned(),
                        format!(
                            "{} ({:.0})",
                            pt.model_pick.alg.name(),
                            pt.model_degradation_pct()
                        ),
                        format!(
                            "{} ({:.0})",
                            pt.fixed_pick.alg.name(),
                            pt.fixed_degradation_pct()
                        ),
                    ]
                })
                .collect();
            out.push_str(&format_table(
                &["m", "best", "model-based (%)", "fixed rules (%)"],
                &rows,
            ));
            out.push_str(&format!(
                "model-based: near-optimal {:.0}% of cases, worst {:.0}%; \
                 fixed rules: near-optimal {:.0}% of cases, worst {:.0}%\n",
                100.0 * col.model_summary.near_optimal_fraction,
                col.model_summary.max_degradation_pct,
                100.0 * col.fixed_summary.near_optimal_fraction,
                col.fixed_summary.max_degradation_pct,
            ));
        }
        out
    }

    /// Renders the CSV artifact (one row per `(collective, m)` cell).
    pub fn to_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .columns
            .iter()
            .flat_map(|col| {
                col.points.iter().map(|pt| {
                    vec![
                        col.collective.name().to_owned(),
                        self.p.to_string(),
                        pt.m.to_string(),
                        pt.best.name().to_owned(),
                        pt.model_pick.alg.name().to_owned(),
                        format!("{:.2}", pt.model_degradation_pct()),
                        pt.fixed_pick.alg.name().to_owned(),
                        format!("{:.2}", pt.fixed_degradation_pct()),
                    ]
                })
            })
            .collect();
        format_csv(
            &[
                "collective",
                "p",
                "m_bytes",
                "best",
                "model_pick",
                "model_degradation_pct",
                "fixed_pick",
                "fixed_degradation_pct",
            ],
            &rows,
        )
    }
}

/// One cell's measurement plan: where its family grid landed in the
/// flattened spec list, plus the extra slots (if any) of the picks
/// measured at their own segment sizes.
struct PointPlan {
    m: usize,
    seed: u64,
    grid_start: usize,
    n_alg: usize,
    model_pick: CollSelection,
    fixed_pick: CollSelection,
    model_slot: Option<usize>,
    fixed_slot: Option<usize>,
}

/// Runs the per-collective comparison at one process count.
///
/// Decisions are pure, so both picks are known before anything is
/// measured; picks whose effective segment size differs from the grid's
/// get an extra measurement cell appended after the grid.
///
/// # Panics
///
/// Panics if `collectives` or `msg_sizes` is empty.
#[allow(clippy::too_many_arguments)]
pub fn run_breadth(
    cluster: &ClusterModel,
    model: &TunedModel,
    collectives: &[Collective],
    p: usize,
    msg_sizes: &[usize],
    seg_size: usize,
    precision: &Precision,
    backend: Backend,
    seed: u64,
) -> BreadthResult {
    assert!(!collectives.is_empty(), "no collectives requested");
    assert!(!msg_sizes.is_empty(), "no message sizes requested");
    let selector = model.multi_selector();
    let mut specs: Vec<CollectiveSpec> = Vec::new();
    let mut plans: Vec<PointPlan> = Vec::new();
    for &c in collectives {
        let family = c.algorithms();
        for (i, &m) in msg_sizes.iter().enumerate() {
            let point_seed = seed
                .wrapping_add((c.index() as u64) << 28)
                .wrapping_add((i as u64) << 20);
            let grid_start = specs.len();
            for (j, &alg) in family.iter().enumerate() {
                specs.push(CollectiveSpec {
                    alg,
                    p,
                    m,
                    seg_size,
                    seed: point_seed.wrapping_add(j as u64 * 65537),
                });
            }
            plans.push(PointPlan {
                m,
                seed: point_seed,
                grid_start,
                n_alg: family.len(),
                model_pick: selector.select_for(c, p, m),
                fixed_pick: fixed_selection(c, p, m),
                model_slot: None,
                fixed_slot: None,
            });
        }
    }
    // Extra cells for picks measured at their own segment sizes.
    for plan in &mut plans {
        if plan.model_pick.effective_seg_size(plan.m) != seg_size {
            plan.model_slot = Some(specs.len());
            specs.push(CollectiveSpec {
                alg: plan.model_pick.alg,
                p,
                m: plan.m,
                seg_size: plan.model_pick.effective_seg_size(plan.m),
                seed: plan.seed.wrapping_add(0xA0),
            });
        }
        if plan.fixed_pick.effective_seg_size(plan.m) != seg_size {
            plan.fixed_slot = Some(specs.len());
            specs.push(CollectiveSpec {
                alg: plan.fixed_pick.alg,
                p,
                m: plan.m,
                seg_size: plan.fixed_pick.effective_seg_size(plan.m),
                seed: plan.seed.wrapping_add(0xB0),
            });
        }
    }

    let stats = collective_time_batch_with(cluster, &specs, precision, Pool::current(), backend);

    let per = msg_sizes.len();
    let columns = collectives
        .iter()
        .enumerate()
        .map(|(ci, &c)| {
            let points: Vec<BreadthPoint> = plans[ci * per..(ci + 1) * per]
                .iter()
                .map(|plan| {
                    let cells = &specs[plan.grid_start..plan.grid_start + plan.n_alg];
                    let times: BTreeMap<Alg, f64> = cells
                        .iter()
                        .zip(&stats[plan.grid_start..plan.grid_start + plan.n_alg])
                        .map(|(spec, s)| (spec.alg, s.mean))
                        .collect();
                    let (&best, &best_time) = times
                        .iter()
                        .min_by(|a, b| a.1.total_cmp(b.1))
                        .expect("every collective has at least one algorithm");
                    let model_time = match plan.model_slot {
                        Some(slot) => stats[slot].mean,
                        None => times[&plan.model_pick.alg],
                    };
                    let fixed_time = match plan.fixed_slot {
                        Some(slot) => stats[slot].mean,
                        None => times[&plan.fixed_pick.alg],
                    };
                    BreadthPoint {
                        m: plan.m,
                        times,
                        best,
                        best_time,
                        model_pick: plan.model_pick,
                        model_time,
                        fixed_pick: plan.fixed_pick,
                        fixed_time,
                    }
                })
                .collect();
            let model_deg: Vec<f64> = points
                .iter()
                .map(BreadthPoint::model_degradation_pct)
                .collect();
            let fixed_deg: Vec<f64> = points
                .iter()
                .map(BreadthPoint::fixed_degradation_pct)
                .collect();
            BreadthColumn {
                collective: c,
                model_summary: summarise(&model_deg),
                fixed_summary: summarise(&fixed_deg),
                points,
            }
        })
        .collect();
    BreadthResult {
        cluster: cluster.name().to_owned(),
        p,
        seg_size,
        columns,
    }
}

// JSON persistence (layout-compatible with the former serde derives).
collsel_support::json_struct!(BreadthPoint {
    m,
    times,
    best,
    best_time,
    model_pick,
    model_time,
    fixed_pick,
    fixed_time
});
collsel_support::json_struct!(BreadthColumn {
    collective,
    points,
    model_summary,
    fixed_summary
});
collsel_support::json_struct!(BreadthResult {
    cluster,
    p,
    seg_size,
    columns
});

#[cfg(test)]
mod tests {
    use super::*;
    use collsel::netsim::NoiseParams;
    use collsel::{Tuner, TunerConfig};

    fn quick_model(cluster: &ClusterModel, collectives: &[Collective]) -> TunedModel {
        Tuner::new(cluster.clone(), TunerConfig::quick(12)).tune_collectives(collectives)
    }

    #[test]
    fn breadth_point_invariants() {
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let collectives = [Collective::Reduce, Collective::Alltoall];
        let model = quick_model(&cluster, &collectives);
        let result = run_breadth(
            &cluster,
            &model,
            &collectives,
            16,
            &[8 * 1024, 512 * 1024],
            64 * 1024,
            &Precision::quick(),
            Backend::default(),
            11,
        );
        assert_eq!(result.columns.len(), 2);
        for col in &result.columns {
            assert_eq!(col.points.len(), 2);
            for pt in &col.points {
                // Every pick belongs to the column's collective.
                assert_eq!(pt.model_pick.alg.collective(), col.collective);
                assert_eq!(pt.fixed_pick.alg.collective(), col.collective);
                // Best is the minimum of the family's measured table.
                assert!(
                    pt.best_time <= pt.times.values().fold(f64::INFINITY, |a, &b| a.min(b)) + 1e-12
                );
                assert!(pt.model_degradation_pct() >= -1e-9);
                assert!(pt.fixed_degradation_pct() >= -1e-9);
                assert!(pt.fixed_time > 0.0);
            }
        }
        let text = result.to_text();
        assert!(text.contains("MPI_Reduce"));
        assert!(text.contains("MPI_Alltoall"));
        assert_eq!(result.to_csv().lines().count(), 5);
    }

    #[test]
    fn breadth_report_is_backend_and_json_stable() {
        let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
        let collectives = [Collective::Scatter];
        let model = quick_model(&cluster, &collectives);
        let run = |backend| {
            run_breadth(
                &cluster,
                &model,
                &collectives,
                8,
                &[16 * 1024],
                64 * 1024,
                &Precision::quick(),
                backend,
                7,
            )
        };
        let dag = run(Backend::Dag);
        let events = run(Backend::Events);
        let threads = run(Backend::Threads);
        // All three backends execute the same programs: bit-identical.
        assert_eq!(events, threads);
        assert_eq!(dag, events);
        // JSON round-trip preserves the report exactly.
        let json = collsel_support::ToJson::to_json(&events).to_string();
        let parsed = collsel_support::Json::parse(&json).unwrap();
        let back: BreadthResult = collsel_support::FromJson::from_json(&parsed).unwrap();
        assert_eq!(back, events);
    }
}
