//! Shared measurement sweeps: every Fig. 5 panel and Table 3 column is
//! built from the same per-point procedure — measure all six algorithms
//! at the paper's fixed 8 KB segment size, ask each decision function
//! for its pick, and measure the Open MPI pick with its own segment
//! size.

use crate::config::Scenario;
use collsel::coll::BcastAlg;
use collsel::estim::measure::{bcast_time_batch_with, BcastSpec};
use collsel::estim::Precision;
use collsel::mpi::Backend;
use collsel::netsim::ClusterModel;
use collsel::select::analysis::MeasuredPoint;
use collsel::select::{CompiledSelector, OpenMpiFixedSelector, Selection, Selector};
use collsel::TunedModel;
use collsel_support::pool::Pool;
use std::collections::BTreeMap;

/// Everything measured and decided at one `(p, m)` point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Process count.
    pub p: usize,
    /// Message size in bytes.
    pub m: usize,
    /// Measured mean time of every algorithm at the fixed segment size.
    pub measured: MeasuredPoint,
    /// The measured best algorithm at the fixed segment size.
    pub best: BcastAlg,
    /// Its time in seconds.
    pub best_time: f64,
    /// The model-based decision's pick.
    pub model_pick: BcastAlg,
    /// Measured time of the model-based pick.
    pub model_time: f64,
    /// The native Open MPI decision (algorithm + its own segment size).
    pub openmpi_pick: Selection,
    /// Measured time of the Open MPI pick at its own segment size.
    pub openmpi_time: f64,
}

impl SweepPoint {
    /// Degradation of the model-based pick vs best, percent.
    pub fn model_degradation_pct(&self) -> f64 {
        100.0 * (self.model_time - self.best_time) / self.best_time
    }

    /// Degradation of the Open MPI pick vs best, percent.
    pub fn openmpi_degradation_pct(&self) -> f64 {
        100.0 * (self.openmpi_time - self.best_time) / self.best_time
    }
}

/// One Fig. 5 panel: a full message-size sweep at one process count.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPanel {
    /// Cluster name.
    pub cluster: String,
    /// Process count of the panel.
    pub p: usize,
    /// Fixed segment size of the model-based/oracle measurements.
    pub seg_size: usize,
    /// One point per message size, ascending.
    pub points: Vec<SweepPoint>,
}

/// The per-algorithm cells of one `(p, m)` point, with the exact
/// per-algorithm seeds of the original serial loop.
fn point_specs(p: usize, m: usize, seg_size: usize, seed: u64) -> Vec<BcastSpec> {
    BcastAlg::ALL
        .iter()
        .enumerate()
        .map(|(i, &alg)| BcastSpec {
            alg,
            p,
            m,
            seg_size,
            seed: seed.wrapping_add(i as u64 * 65537),
        })
        .collect()
}

/// Measures all six algorithms at `(p, m)` with the fixed segment size,
/// on the default measurement [`Backend`].
///
/// The algorithms fan out across the current [`Pool`]; each carries its
/// own seed, so the point is bit-identical at any thread count.
pub fn measure_point(
    cluster: &ClusterModel,
    p: usize,
    m: usize,
    seg_size: usize,
    precision: &Precision,
    seed: u64,
) -> MeasuredPoint {
    let specs = point_specs(p, m, seg_size, seed);
    let stats = bcast_time_batch_with(
        cluster,
        &specs,
        precision,
        Pool::current(),
        Backend::default(),
    );
    let times: BTreeMap<BcastAlg, f64> = specs
        .iter()
        .zip(&stats)
        .map(|(spec, s)| (spec.alg, s.mean))
        .collect();
    MeasuredPoint::new(p, m, times)
}

/// Runs the full sweep for one panel.
///
/// The whole (message size × algorithm) grid — plus the extra Open MPI
/// cells for picks whose segment size differs from the panel's — is
/// flattened into a single batch over the current [`Pool`], so the pool
/// load-balances across every cell of the panel at once. Per-cell seeds
/// match the serial per-point loop, keeping the panel bit-identical at
/// any thread count; every cell executes on the scenario's measurement
/// [`Backend`] (events by default), which is bit-identical too.
pub fn sweep_panel(scenario: &Scenario, tuned: &TunedModel, p: usize, seed: u64) -> SweepPanel {
    let selector = tuned.selector();
    // The panel's model picks are served from the compiled decision
    // table — the same serving structure `colltune bench-select`
    // measures — instead of re-ranking all six models at every point.
    // Every queried (p, m) is a grid point of the compilation, where
    // the compiled table agrees exactly with the live selector (the
    // differential suite in tests/service.rs enforces this), so the
    // panel's contents are unchanged.
    let mut msg_grid = scenario.msg_sizes.clone();
    msg_grid.sort_unstable();
    msg_grid.dedup();
    let compiled = CompiledSelector::compile(&selector, &[p], &msg_grid);
    let openmpi = OpenMpiFixedSelector;
    let n_alg = BcastAlg::ALL.len();
    let point_seed = |i: usize| seed.wrapping_add((i as u64) << 20);

    // Selection is pure, so the Open MPI picks (and hence which points
    // need an extra differently-segmented measurement) are known before
    // anything is measured.
    let picks: Vec<Selection> = scenario
        .msg_sizes
        .iter()
        .map(|&m| openmpi.select(p, m))
        .collect();

    let mut specs: Vec<BcastSpec> = Vec::with_capacity(scenario.msg_sizes.len() * (n_alg + 1));
    for (i, &m) in scenario.msg_sizes.iter().enumerate() {
        specs.extend(point_specs(p, m, scenario.seg_size, point_seed(i)));
    }
    // Extra Open MPI cells are appended after the grid; remember where
    // each point's extra landed (if it needed one).
    let mut extra_slot: Vec<Option<usize>> = Vec::with_capacity(scenario.msg_sizes.len());
    for (i, &m) in scenario.msg_sizes.iter().enumerate() {
        let pick = &picks[i];
        if pick.effective_seg_size(m) == scenario.seg_size {
            extra_slot.push(None);
        } else {
            extra_slot.push(Some(specs.len()));
            specs.push(BcastSpec {
                alg: pick.alg,
                p,
                m,
                seg_size: pick.effective_seg_size(m),
                seed: point_seed(i).wrapping_add(0xE0),
            });
        }
    }

    let stats = bcast_time_batch_with(
        &scenario.cluster,
        &specs,
        &scenario.precision,
        Pool::current(),
        scenario.backend,
    );

    let mut points = Vec::with_capacity(scenario.msg_sizes.len());
    for (i, &m) in scenario.msg_sizes.iter().enumerate() {
        let times: BTreeMap<BcastAlg, f64> = specs[i * n_alg..(i + 1) * n_alg]
            .iter()
            .zip(&stats[i * n_alg..(i + 1) * n_alg])
            .map(|(spec, s)| (spec.alg, s.mean))
            .collect();
        let measured = MeasuredPoint::new(p, m, times);
        let (best, best_time) = measured.best();
        let model_pick = compiled.lookup(p, m).alg;
        let model_time = measured.times[&model_pick];
        let openmpi_pick = picks[i].clone();
        let openmpi_time = match extra_slot[i] {
            Some(slot) => stats[slot].mean,
            None => measured.times[&openmpi_pick.alg],
        };
        points.push(SweepPoint {
            p,
            m,
            measured,
            best,
            best_time,
            model_pick,
            model_time,
            openmpi_pick,
            openmpi_time,
        });
    }
    SweepPanel {
        cluster: scenario.cluster.name().to_owned(),
        p,
        seg_size: scenario.seg_size,
        points,
    }
}

// JSON persistence (layout-compatible with the former serde derives).
collsel_support::json_struct!(SweepPoint {
    p,
    m,
    measured,
    best,
    best_time,
    model_pick,
    model_time,
    openmpi_pick,
    openmpi_time
});
collsel_support::json_struct!(SweepPanel {
    cluster,
    p,
    seg_size,
    points
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{scenarios, Fidelity};
    use collsel::netsim::NoiseParams;
    use collsel::{Tuner, TunerConfig};

    #[test]
    fn sweep_point_invariants() {
        // A tiny sweep on a quiet small configuration.
        let mut sc = scenarios(Fidelity::Quick).remove(1); // gros
        sc.cluster = sc.cluster.with_noise(NoiseParams::OFF);
        sc.msg_sizes = vec![8 * 1024, 128 * 1024];
        let tuned = Tuner::new(sc.cluster.clone(), TunerConfig::quick(12)).tune();
        let panel = sweep_panel(&sc, &tuned, 16, 9);
        assert_eq!(panel.points.len(), 2);
        for pt in &panel.points {
            // Best is the minimum of the measured table.
            assert!(pt.best_time <= pt.model_time + 1e-12);
            assert!(pt.model_degradation_pct() >= -1e-9);
            // The model pick's time comes from the measured table.
            assert_eq!(pt.model_time, pt.measured.times[&pt.model_pick]);
            // Open MPI time is positive (measured separately when its
            // segment size differs).
            assert!(pt.openmpi_time > 0.0);
        }
    }
}
