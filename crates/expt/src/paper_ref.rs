//! The paper's published numbers, embedded for side-by-side comparison
//! in the regenerated tables and in `EXPERIMENTS.md`.

use collsel::coll::BcastAlg;

/// Paper Table 1: γ(P) on Grisou and Gros for P = 3..=7.
pub const TABLE1_GAMMA: [(usize, f64, f64); 5] = [
    (3, 1.114, 1.084),
    (4, 1.219, 1.170),
    (5, 1.283, 1.254),
    (6, 1.451, 1.339),
    (7, 1.540, 1.424),
];

/// Paper Table 2: per-algorithm (α s, β s/B) on Grisou.
pub const TABLE2_GRISOU: [(BcastAlg, f64, f64); 6] = [
    (BcastAlg::Linear, 2.2e-12, 1.8e-8),
    (BcastAlg::KChain, 5.7e-13, 4.7e-9),
    (BcastAlg::Chain, 6.1e-13, 4.9e-9),
    (BcastAlg::SplitBinary, 3.7e-13, 3.6e-9),
    (BcastAlg::Binary, 5.8e-13, 4.7e-9),
    (BcastAlg::Binomial, 5.8e-13, 4.8e-9),
];

/// Paper Table 2: per-algorithm (α s, β s/B) on Gros.
pub const TABLE2_GROS: [(BcastAlg, f64, f64); 6] = [
    (BcastAlg::Linear, 1.4e-12, 1.1e-8),
    (BcastAlg::KChain, 5.4e-13, 4.5e-9),
    (BcastAlg::Chain, 4.7e-12, 3.8e-8),
    (BcastAlg::SplitBinary, 5.5e-13, 4.5e-9),
    (BcastAlg::Binary, 5.8e-13, 4.7e-9),
    (BcastAlg::Binomial, 1.2e-13, 1.0e-9),
];

/// One row of the paper's Table 3.
#[derive(Debug, Clone, Copy)]
pub struct Table3Ref {
    /// Message size in KB.
    pub m_kb: usize,
    /// Measured best algorithm.
    pub best: BcastAlg,
    /// Model-based pick and its degradation (percent).
    pub model: (BcastAlg, f64),
    /// Open MPI pick and its degradation (percent).
    pub openmpi: (BcastAlg, f64),
}

/// Paper Table 3, Grisou at P = 90.
pub const TABLE3_GRISOU_P90: [Table3Ref; 10] = [
    Table3Ref {
        m_kb: 8,
        best: BcastAlg::Binomial,
        model: (BcastAlg::Binary, 3.0),
        openmpi: (BcastAlg::SplitBinary, 160.0),
    },
    Table3Ref {
        m_kb: 16,
        best: BcastAlg::Binary,
        model: (BcastAlg::Binary, 0.0),
        openmpi: (BcastAlg::SplitBinary, 1.0),
    },
    Table3Ref {
        m_kb: 32,
        best: BcastAlg::Binary,
        model: (BcastAlg::Binary, 0.0),
        openmpi: (BcastAlg::SplitBinary, 0.0),
    },
    Table3Ref {
        m_kb: 64,
        best: BcastAlg::SplitBinary,
        model: (BcastAlg::Binary, 1.0),
        openmpi: (BcastAlg::SplitBinary, 0.0),
    },
    Table3Ref {
        m_kb: 128,
        best: BcastAlg::Binary,
        model: (BcastAlg::Binary, 0.0),
        openmpi: (BcastAlg::SplitBinary, 1.0),
    },
    Table3Ref {
        m_kb: 256,
        best: BcastAlg::SplitBinary,
        model: (BcastAlg::Binary, 2.0),
        openmpi: (BcastAlg::SplitBinary, 0.0),
    },
    Table3Ref {
        m_kb: 512,
        best: BcastAlg::SplitBinary,
        model: (BcastAlg::Binary, 2.0),
        openmpi: (BcastAlg::Chain, 111.0),
    },
    Table3Ref {
        m_kb: 1024,
        best: BcastAlg::SplitBinary,
        model: (BcastAlg::Binary, 3.0),
        openmpi: (BcastAlg::Chain, 88.0),
    },
    Table3Ref {
        m_kb: 2048,
        best: BcastAlg::SplitBinary,
        model: (BcastAlg::Binary, 2.0),
        openmpi: (BcastAlg::Chain, 55.0),
    },
    Table3Ref {
        m_kb: 4096,
        best: BcastAlg::SplitBinary,
        model: (BcastAlg::Binary, 1.0),
        openmpi: (BcastAlg::Chain, 20.0),
    },
];

/// Paper Table 3, Gros at P = 100.
pub const TABLE3_GROS_P100: [Table3Ref; 10] = [
    Table3Ref {
        m_kb: 8,
        best: BcastAlg::Binary,
        model: (BcastAlg::Binomial, 3.0),
        openmpi: (BcastAlg::SplitBinary, 549.0),
    },
    Table3Ref {
        m_kb: 16,
        best: BcastAlg::Binomial,
        model: (BcastAlg::Binomial, 0.0),
        openmpi: (BcastAlg::SplitBinary, 32.0),
    },
    Table3Ref {
        m_kb: 32,
        best: BcastAlg::Binomial,
        model: (BcastAlg::Binomial, 0.0),
        openmpi: (BcastAlg::SplitBinary, 3.0),
    },
    Table3Ref {
        m_kb: 64,
        best: BcastAlg::SplitBinary,
        model: (BcastAlg::Binomial, 8.0),
        openmpi: (BcastAlg::SplitBinary, 0.0),
    },
    Table3Ref {
        m_kb: 128,
        best: BcastAlg::SplitBinary,
        model: (BcastAlg::Binomial, 8.0),
        openmpi: (BcastAlg::SplitBinary, 0.0),
    },
    Table3Ref {
        m_kb: 256,
        best: BcastAlg::Binary,
        model: (BcastAlg::Binary, 0.0),
        openmpi: (BcastAlg::SplitBinary, 6.0),
    },
    Table3Ref {
        m_kb: 512,
        best: BcastAlg::Binary,
        model: (BcastAlg::Binary, 0.0),
        openmpi: (BcastAlg::Chain, 7297.0),
    },
    Table3Ref {
        m_kb: 1024,
        best: BcastAlg::SplitBinary,
        model: (BcastAlg::Binary, 7.0),
        openmpi: (BcastAlg::Chain, 6094.0),
    },
    Table3Ref {
        m_kb: 2048,
        best: BcastAlg::SplitBinary,
        model: (BcastAlg::Binary, 4.0),
        openmpi: (BcastAlg::Chain, 3227.0),
    },
    Table3Ref {
        m_kb: 4096,
        best: BcastAlg::SplitBinary,
        model: (BcastAlg::Binary, 9.0),
        openmpi: (BcastAlg::Chain, 2568.0),
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_gamma_is_monotone_in_p() {
        for w in TABLE1_GAMMA.windows(2) {
            assert!(w[1].1 > w[0].1);
            assert!(w[1].2 > w[0].2);
        }
    }

    #[test]
    fn table2_covers_all_algorithms() {
        for table in [&TABLE2_GRISOU, &TABLE2_GROS] {
            let mut algs: Vec<_> = table.iter().map(|&(a, _, _)| a).collect();
            algs.sort();
            algs.dedup();
            assert_eq!(algs.len(), 6);
        }
    }

    #[test]
    fn table3_sizes_are_the_ten_paper_sizes() {
        let sizes: Vec<usize> = TABLE3_GRISOU_P90.iter().map(|r| r.m_kb).collect();
        assert_eq!(sizes, vec![8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096]);
    }

    #[test]
    fn openmpi_never_beats_best_in_table3() {
        for row in TABLE3_GRISOU_P90.iter().chain(&TABLE3_GROS_P100) {
            assert!(row.openmpi.1 >= 0.0);
            assert!(row.model.1 >= 0.0);
        }
    }
}
