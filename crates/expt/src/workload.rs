//! Workload traces: a training job as a sequence of steps, each a mix
//! of collectives at mixed sizes on overlapping sub-communicators.
//!
//! The paper scores algorithms per collective call; what users of a
//! selection service feel is end-to-end job time over mixed traffic.
//! A [`Trace`] captures that traffic shape the way ML training frames
//! it: the world's ranks are cut into dp/tp/pp-style [`RankGroup`]s
//! (data-parallel replicas strided across tensor-parallel blocks,
//! pipeline stages as adjacent pairs), and each [`Step`] issues one
//! collective per participating group. Traces serialise to JSON (the
//! `colltune replay` input format) and are replayed by
//! [`crate::replay`], which scores any selector by total job
//! completion time.
//!
//! [`TraceGen`] generates seeded random traces from two presets —
//! data-parallel allreduce-heavy and pipeline-parallel bcast-heavy —
//! and [`canned_dp`]/[`canned_pp`] fix the seeds for the determinism
//! gates.

use collsel::coll::Collective;
use collsel_support::json_struct;
use collsel_support::rng::splitmix64_below;

/// A named sub-communicator: an ascending, duplicate-free subset of
/// the world's ranks. Group rank 0 (the lowest member) is the root of
/// any rooted collective run on the group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankGroup {
    /// Display name, e.g. `"dp0"` or `"world"`.
    pub name: String,
    /// Global member ranks, ascending.
    pub ranks: Vec<usize>,
}

json_struct!(RankGroup { name, ranks });

/// One collective call of a step, bound to a group by index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCall {
    /// Index into [`Trace::groups`].
    pub group: usize,
    /// Which collective to run.
    pub collective: Collective,
    /// Message size in bytes
    /// ([`collsel::coll::run_collective`]'s convention).
    pub m: usize,
}

json_struct!(TraceCall {
    group,
    collective,
    m
});

/// One training step: its calls are issued together (each in its own
/// tag window) and the step ends when every group member finishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// The step's collective calls, in issue order.
    pub calls: Vec<TraceCall>,
}

json_struct!(Step { calls });

/// A full workload trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Display name (preset + seed for generated traces).
    pub name: String,
    /// Global communicator size.
    pub world: usize,
    /// The sub-communicators the steps reference.
    pub groups: Vec<RankGroup>,
    /// The step sequence.
    pub steps: Vec<Step>,
}

json_struct!(Trace {
    name,
    world,
    groups,
    steps
});

impl Trace {
    /// Checks structural invariants: a positive world, at least one
    /// step, every group non-empty / ascending / in-world, and every
    /// call referencing an existing group.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.world == 0 {
            return Err("trace world must be positive".into());
        }
        if self.steps.is_empty() {
            return Err("trace has no steps".into());
        }
        for (gi, g) in self.groups.iter().enumerate() {
            if g.ranks.is_empty() {
                return Err(format!("group {gi} ({}) is empty", g.name));
            }
            for w in g.ranks.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!(
                        "group {gi} ({}) ranks must be strictly ascending",
                        g.name
                    ));
                }
            }
            if g.ranks.last().is_some_and(|&last| last >= self.world) {
                return Err(format!(
                    "group {gi} ({}) exceeds world of {}",
                    g.name, self.world
                ));
            }
        }
        for (si, step) in self.steps.iter().enumerate() {
            if step.calls.is_empty() {
                return Err(format!("step {si} has no calls"));
            }
            for call in &step.calls {
                if call.group >= self.groups.len() {
                    return Err(format!(
                        "step {si} references group {} of {}",
                        call.group,
                        self.groups.len()
                    ));
                }
            }
        }
        Ok(())
    }

    /// Total collective calls across all steps.
    pub fn total_calls(&self) -> usize {
        self.steps.iter().map(|s| s.calls.len()).sum()
    }
}

/// Trace generator presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePreset {
    /// Data-parallel training: strided dp groups run large gradient
    /// allreduces every step, contiguous tp blocks mix in medium
    /// allgathers and alltoalls, and a periodic small global allreduce
    /// models a gradient-norm check.
    DataParallel,
    /// Pipeline-parallel training: adjacent 2-rank stage groups pass
    /// activations with broadcasts (a group bcast at P=2 is the p2p
    /// stage hand-off), with a periodic global parameter bcast and a
    /// small global loss allreduce.
    Pipeline,
}

impl TracePreset {
    /// The preset's name as spelled on the `colltune replay --gen`
    /// flag.
    pub fn name(self) -> &'static str {
        match self {
            TracePreset::DataParallel => "dp",
            TracePreset::Pipeline => "pp",
        }
    }

    /// Parses a `--gen` preset name.
    pub fn parse(s: &str) -> Option<TracePreset> {
        match s {
            "dp" => Some(TracePreset::DataParallel),
            "pp" => Some(TracePreset::Pipeline),
            _ => None,
        }
    }
}

/// Seeded trace generator: the trace is a pure function of the four
/// fields, bit-identical across runs, platforms and thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceGen {
    /// Which traffic shape to generate.
    pub preset: TracePreset,
    /// Global communicator size (at least 2).
    pub world: usize,
    /// Number of steps.
    pub steps: usize,
    /// Randomness seed.
    pub seed: u64,
}

/// Draws `base << e` bytes with `e` uniform in `0..exps` — the same
/// log-spaced size grid the tuning sweeps use, without modulo bias.
fn log_size(state: &mut u64, base: usize, exps: u64) -> usize {
    base << splitmix64_below(state, exps)
}

impl TraceGen {
    /// Generates the trace.
    ///
    /// # Panics
    ///
    /// Panics if `world < 2` or `steps == 0`.
    pub fn generate(&self) -> Trace {
        assert!(self.world >= 2, "need at least two ranks");
        assert!(self.steps > 0, "need at least one step");
        let trace = match self.preset {
            TracePreset::DataParallel => self.gen_dp(),
            TracePreset::Pipeline => self.gen_pp(),
        };
        trace
            .validate()
            .unwrap_or_else(|e| panic!("generated trace is invalid: {e}"));
        trace
    }

    /// The tensor-parallel block width for a dp/tp cut of `world`.
    fn tp_width(world: usize) -> usize {
        if world % 4 == 0 {
            4
        } else if world % 2 == 0 {
            2
        } else {
            1
        }
    }

    fn gen_dp(&self) -> Trace {
        let w = self.world;
        let t = Self::tp_width(w);
        let mut groups = vec![RankGroup {
            name: "world".into(),
            ranks: (0..w).collect(),
        }];
        // Contiguous tensor-parallel blocks: [0..t), [t..2t), ...
        let tp_start = groups.len();
        let tp_count = w / t;
        if t > 1 {
            for b in 0..tp_count {
                groups.push(RankGroup {
                    name: format!("tp{b}"),
                    ranks: (b * t..(b + 1) * t).collect(),
                });
            }
        }
        // Strided data-parallel groups: {j, j+t, j+2t, ...} — one per
        // position within a tp block, overlapping every tp group.
        let dp_start = groups.len();
        let dp_count = if tp_count > 1 { t } else { 0 };
        for j in 0..dp_count {
            groups.push(RankGroup {
                name: format!("dp{j}"),
                ranks: (0..tp_count).map(|r| r * t + j).collect(),
            });
        }

        let mut state = self.seed ^ 0xD0D0_0001;
        let mut steps = Vec::with_capacity(self.steps);
        for s in 0..self.steps {
            let mut calls = Vec::new();
            // A tp collective leads each step (activation exchange).
            if t > 1 {
                for b in 0..tp_count {
                    let collective = if splitmix64_below(&mut state, 2) == 0 {
                        Collective::Allgather
                    } else {
                        Collective::Alltoall
                    };
                    calls.push(TraceCall {
                        group: tp_start + b,
                        collective,
                        m: log_size(&mut state, 4 * 1024, 4), // 4..32 KB
                    });
                }
            }
            // The gradient allreduce dominates: one per dp group (or on
            // the world when there is no dp/tp cut).
            let grad_m = log_size(&mut state, 128 * 1024, 4); // 128 KB..1 MB
            if dp_count > 0 {
                for j in 0..dp_count {
                    calls.push(TraceCall {
                        group: dp_start + j,
                        collective: Collective::Allreduce,
                        m: grad_m,
                    });
                }
            } else {
                calls.push(TraceCall {
                    group: 0,
                    collective: Collective::Allreduce,
                    m: grad_m,
                });
            }
            // Every fourth step: a small global gradient-norm check.
            if s % 4 == 3 {
                calls.push(TraceCall {
                    group: 0,
                    collective: Collective::Allreduce,
                    m: 64,
                });
            }
            steps.push(Step { calls });
        }
        Trace {
            name: format!("dp-w{}-s{}-seed{}", w, self.steps, self.seed),
            world: w,
            groups,
            steps,
        }
    }

    fn gen_pp(&self) -> Trace {
        let w = self.world;
        let mut groups = vec![RankGroup {
            name: "world".into(),
            ranks: (0..w).collect(),
        }];
        // Overlapping pipeline stage pairs: {0,1}, {1,2}, ..., {w-2,w-1}.
        let pair_start = groups.len();
        for i in 0..w - 1 {
            groups.push(RankGroup {
                name: format!("pp{i}"),
                ranks: vec![i, i + 1],
            });
        }

        let mut state = self.seed ^ 0xD0D0_0002;
        let mut steps = Vec::with_capacity(self.steps);
        for s in 0..self.steps {
            let mut calls = Vec::new();
            // Alternate stage parity so consecutive hand-offs overlap
            // like 1F1B scheduling: even pairs one step, odd the next.
            let parity = s % 2;
            for i in (parity..w - 1).step_by(2) {
                calls.push(TraceCall {
                    group: pair_start + i,
                    collective: Collective::Bcast,
                    m: log_size(&mut state, 16 * 1024, 4), // 16..128 KB
                });
            }
            if calls.is_empty() {
                // w == 2 with odd parity: fall back to the single pair.
                calls.push(TraceCall {
                    group: pair_start,
                    collective: Collective::Bcast,
                    m: log_size(&mut state, 16 * 1024, 4),
                });
            }
            // Every eighth step: a global parameter broadcast.
            if s % 8 == 7 {
                calls.push(TraceCall {
                    group: 0,
                    collective: Collective::Bcast,
                    m: log_size(&mut state, 256 * 1024, 3), // 256 KB..1 MB
                });
            }
            // Every fourth step: a small global loss allreduce.
            if s % 4 == 3 {
                calls.push(TraceCall {
                    group: 0,
                    collective: Collective::Allreduce,
                    m: 256,
                });
            }
            steps.push(Step { calls });
        }
        Trace {
            name: format!("pp-w{}-s{}-seed{}", w, self.steps, self.seed),
            world: w,
            groups,
            steps,
        }
    }
}

/// The canned data-parallel trace the determinism gates replay: 12
/// ranks (3 tensor blocks × 4 replicas), 8 steps, fixed seed.
pub fn canned_dp() -> Trace {
    TraceGen {
        preset: TracePreset::DataParallel,
        world: 12,
        steps: 8,
        seed: 42,
    }
    .generate()
}

/// The canned pipeline-parallel trace the determinism gates replay: 8
/// stages, 12 steps, fixed seed.
pub fn canned_pp() -> Trace {
    TraceGen {
        preset: TracePreset::Pipeline,
        world: 8,
        steps: 12,
        seed: 42,
    }
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use collsel_support::{FromJson, Json, ToJson};

    #[test]
    fn generation_is_seed_deterministic() {
        for preset in [TracePreset::DataParallel, TracePreset::Pipeline] {
            let gen = TraceGen {
                preset,
                world: 8,
                steps: 6,
                seed: 7,
            };
            assert_eq!(gen.generate(), gen.generate());
            let other = TraceGen { seed: 8, ..gen };
            assert_ne!(gen.generate(), other.generate(), "seed must matter");
        }
    }

    #[test]
    fn canned_traces_validate_and_round_trip() -> Result<(), String> {
        for trace in [canned_dp(), canned_pp()] {
            trace.validate()?;
            let json = trace.to_json().to_string_pretty();
            let back = Trace::from_json(&Json::parse(&json).map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
            assert_eq!(trace, back);
        }
        Ok(())
    }

    #[test]
    fn dp_groups_overlap_tp_groups() {
        let t = canned_dp();
        let tp: Vec<_> = t
            .groups
            .iter()
            .filter(|g| g.name.starts_with("tp"))
            .collect();
        let dp: Vec<_> = t
            .groups
            .iter()
            .filter(|g| g.name.starts_with("dp"))
            .collect();
        assert!(!tp.is_empty() && !dp.is_empty());
        for d in &dp {
            for b in &tp {
                let shared = d.ranks.iter().filter(|r| b.ranks.contains(r)).count();
                assert_eq!(shared, 1, "each dp group meets each tp block once");
            }
        }
    }

    #[test]
    fn validate_rejects_malformed_traces() {
        let mut t = canned_dp();
        t.steps[0].calls[0].group = 999;
        assert!(t.validate().is_err());
        let mut t = canned_dp();
        t.groups[0].ranks = vec![5, 3];
        assert!(t.validate().is_err());
        let mut t = canned_pp();
        t.world = 2;
        assert!(t.validate().is_err(), "groups now exceed the world");
    }
}
