//! # collsel-expt
//!
//! The experiment harness: regenerates **every table and figure** of
//! the paper's evaluation on the simulated clusters.
//!
//! | Artifact | Runner | Paper content |
//! |---|---|---|
//! | Fig. 1 | [`fig1::run_fig1`] | traditional models vs experiment |
//! | Table 1 | [`table1::run_table1`] | γ(P) on Grisou and Gros |
//! | Table 2 | [`table2::run_table2`] | per-algorithm α, β |
//! | Fig. 5 | [`fig5::run_fig5`] | Open MPI vs model-based vs best |
//! | Table 3 | [`table3::table3_from_fig5`] | selections + degradations |
//! | Breadth | [`breadth::run_breadth`] | Table 3 across all seven collectives |
//!
//! The `repro` binary drives them all:
//!
//! ```text
//! repro [--quick] [--out DIR] [fig1|table1|table2|fig5|table3|all]
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod breadth;
pub mod campaign;
pub mod config;
pub mod fig1;
pub mod paper_ref;
pub mod plot;
pub mod replay;
pub mod report;
pub mod soak;
pub mod sweep;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod workload;

/// Fig. 5 sweeps (also the data source of Table 3).
pub mod fig5;

pub use config::{scenarios, Fidelity, Scenario};
