//! End-to-end trace replay: score a selection policy by **job
//! completion time** (JCT), the application-level metric the
//! per-call tables cannot show.
//!
//! A [`crate::workload::Trace`] step resolves to a list of
//! [`GroupCall`]s by asking a [`ReplayPolicy`] — the tuned model
//! selector, the Open MPI-style fixed rules, the *worst* fitted
//! algorithm (an adversarial upper bound, turning the paper's
//! "up to 7297% degradation" into a whole-job number), or a live
//! [`DecisionServer`] (each call issues a real `decide` lookup first,
//! making replay a realistic traffic driver). The resolved step then
//! runs through any of the three execution backends; steps with equal
//! shape share one compiled artifact via `estim`'s step-cell memo
//! ([`collsel_estim::compiled_step_dag`]), so the DAG tier records and
//! compiles each distinct (step-shape, geometry) cell once and batch-
//! replays the rest payload-free.
//!
//! JCT is the sum over steps of the step's makespan (steps are
//! serialised by the training loop's data dependency: forward/backward
//! compute of step *s+1* needs step *s*'s gradients, which we model as
//! a hard boundary). All three backends produce bit-identical
//! makespans, so JCT is bit-identical too — gated by
//! `tests/replay_determinism.rs` and ci.sh.

use crate::workload::Trace;
use collsel::coll::compile::{compile_step, GroupCall};
use collsel::coll::Collective;
use collsel::estim::{compiled_step_dag, step_cell, StepCell, StepDag};
use collsel::mpi::{
    simulate_pooled, simulate_scheduled, Backend, DagEvaluator, RecordError, Schedule, SimError,
    SimOptions,
};
use collsel::netsim::{ClusterModel, FaultPlan, SimSpan, SimTime};
use collsel::select::{
    fixed_selection, CollSelection, CollectiveModelSelector, CollectiveSelector, DecisionServer,
};
use collsel_support::{json_struct, Json, ToJson};
use std::collections::HashMap;
use std::sync::Arc;

/// How a replay chooses the algorithm for each collective call.
#[derive(Debug)]
pub enum ReplayPolicy<'a> {
    /// The Open MPI-style fixed decision rules (no model needed).
    Fixed,
    /// The tuned model selector's argmin.
    Tuned(&'a CollectiveModelSelector),
    /// The tuned ranking's *last* finite entry: the worst algorithm
    /// the models can justify, the adversarial bound a bad fixed rule
    /// can approach. Falls back to the fixed rules for collectives
    /// with no finite fit.
    Worst(&'a CollectiveModelSelector),
    /// A live decision server: every call issues a `decide` lookup
    /// (watchdogs, generation swaps and fallbacks included) before the
    /// step replays with the served algorithms.
    Server(&'a DecisionServer),
}

impl ReplayPolicy<'_> {
    /// The policy's name as spelled in reports and on the
    /// `colltune replay --selector` flag.
    pub fn name(&self) -> &'static str {
        match self {
            ReplayPolicy::Fixed => "fixed",
            ReplayPolicy::Tuned(_) => "tuned",
            ReplayPolicy::Worst(_) => "worst",
            ReplayPolicy::Server(_) => "server",
        }
    }

    fn decide(&self, collective: Collective, p: usize, m: usize) -> CollSelection {
        match self {
            ReplayPolicy::Fixed => fixed_selection(collective, p, m),
            ReplayPolicy::Tuned(sel) => sel.select_for(collective, p, m),
            ReplayPolicy::Worst(sel) => {
                let ranking = sel.ranking(collective, p, m);
                match ranking.iter().rev().find(|(_, t)| t.is_finite()) {
                    Some(&(alg, _)) => CollSelection::segmented(alg, sel.seg_for(collective)),
                    None => fixed_selection(collective, p, m),
                }
            }
            ReplayPolicy::Server(srv) => srv.decide(collective, p, m).selection,
        }
    }
}

/// The outcome of replaying one trace under one policy on one backend.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// Trace name.
    pub trace: String,
    /// Policy name ([`ReplayPolicy::name`]).
    pub selector: String,
    /// Backend name (`dag`/`events`/`threads`).
    pub backend: String,
    /// Steps replayed.
    pub steps: usize,
    /// Selector lookups issued (one per collective call).
    pub lookups: u64,
    /// Total job completion time in seconds (Σ step makespans).
    pub jct_s: f64,
    /// JCT in integer nanoseconds — the bit-identity witness (floats
    /// hide low bits; this does not).
    pub jct_ns: u64,
    /// Per-step makespans in nanoseconds.
    pub step_ns: Vec<u64>,
    /// Total messages across all steps.
    pub messages: u64,
    /// Total bytes across all steps.
    pub bytes: u64,
}

json_struct!(ReplayOutcome {
    trace,
    selector,
    backend,
    steps,
    lookups,
    jct_s,
    jct_ns,
    step_ns,
    messages,
    bytes
});

/// Resolves one step's calls through the policy (one lookup per call).
fn resolve_step(
    trace: &Trace,
    step: usize,
    policy: &ReplayPolicy<'_>,
    lookups: &mut u64,
) -> Vec<GroupCall> {
    trace.steps[step]
        .calls
        .iter()
        .map(|call| {
            let group = &trace.groups[call.group];
            let p = group.ranks.len();
            let sel = policy.decide(call.collective, p, call.m);
            *lookups += 1;
            GroupCall {
                alg: sel.alg,
                ranks: group.ranks.clone(),
                m: call.m,
                seg_size: sel.effective_seg_size(call.m),
            }
        })
        .collect()
}

/// Per-step seed: mixes the step index into the trace seed with the
/// golden-ratio increment (attempt-mixing discipline of the
/// measurement tier), identical on every backend.
fn step_seed(seed: u64, step: usize) -> u64 {
    seed.wrapping_add((step as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Cached execution artifact for one distinct step shape, reused
/// across repeated steps within a replay.
enum StepExec {
    Dag(DagEvaluator),
    Sched(Arc<Schedule>),
}

/// Replays `trace` end-to-end on `cluster` under `policy` and
/// `backend`, accumulating JCT as the sum of step makespans.
///
/// All three backends yield bit-identical outcomes at any thread
/// count. On [`Backend::Dag`], distinct step shapes are compiled once
/// through the process-wide step memo and batch-replayed; on
/// [`Backend::Events`], each distinct shape is recorded once per call
/// and replayed per step; [`Backend::Threads`] runs every step through
/// the thread-per-rank oracle.
///
/// # Errors
///
/// [`SimError`] if a step's simulation fails (a watchdogless replay of
/// a valid trace cannot deadlock, but fault plans stay honest), or a
/// recording failure surfaced as [`SimError::Deadlock`]'s detail by
/// the recording run itself.
///
/// # Panics
///
/// Panics if the trace is invalid ([`Trace::validate`]).
pub fn replay_trace(
    cluster: &ClusterModel,
    trace: &Trace,
    policy: &ReplayPolicy<'_>,
    backend: Backend,
    seed: u64,
) -> Result<ReplayOutcome, SimError> {
    trace
        .validate()
        .unwrap_or_else(|e| panic!("invalid trace: {e}"));
    let rec_cluster = cluster.clone().with_faults(FaultPlan::none());
    let mut lookups = 0u64;
    let mut jct = SimSpan::ZERO;
    let mut step_ns = Vec::with_capacity(trace.steps.len());
    let mut messages = 0u64;
    let mut bytes = 0u64;
    // Per-replay artifact reuse: the process-wide memo deduplicates
    // compiles across replays; this map additionally pins one
    // evaluator (fabric + scratch) per shape within this replay.
    let mut execs: HashMap<StepCell, StepExec> = HashMap::new();

    for s in 0..trace.steps.len() {
        let calls = resolve_step(trace, s, policy, &mut lookups);
        let seed_s = step_seed(seed, s);
        let opts = SimOptions::default();
        let report = match backend {
            Backend::Threads => {
                let calls = Arc::new(calls);
                simulate_pooled(cluster, trace.world, seed_s, opts, move |ctx| {
                    collsel::coll::compile::run_step(ctx, &calls)
                })?
                .report
            }
            Backend::Events => {
                let cell = step_cell(trace.world, &calls);
                let exec = match execs.entry(cell) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let sched = compile_step(&rec_cluster, trace.world, &calls)
                            .map_err(record_error_to_sim)?;
                        e.insert(StepExec::Sched(Arc::new(sched)))
                    }
                };
                let StepExec::Sched(sched) = exec else {
                    unreachable!("events replay only caches schedules")
                };
                simulate_scheduled(cluster, sched, seed_s, opts)?.report
            }
            Backend::Dag => {
                let cell = step_cell(trace.world, &calls);
                let exec = match execs.entry(cell.clone()) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let dag = compiled_step_dag(&rec_cluster, cell, |rec| {
                            compile_step(rec, trace.world, &calls)
                        })
                        .ok_or_else(|| SimError::Deadlock {
                            detail: "step recording failed".into(),
                        })?;
                        e.insert(match dag {
                            StepDag::Compiled(dag) => {
                                StepExec::Dag(DagEvaluator::new(cluster, dag))
                            }
                            StepDag::TooLarge(sched) => StepExec::Sched(sched),
                        })
                    }
                };
                match exec {
                    StepExec::Dag(ev) => ev.run(seed_s, opts)?.report,
                    StepExec::Sched(sched) => {
                        simulate_scheduled(cluster, sched, seed_s, opts)?.report
                    }
                }
            }
        };
        let span = report.makespan.saturating_since(SimTime::ZERO);
        jct += span;
        step_ns.push(span.as_nanos());
        messages += report.messages;
        bytes += report.bytes;
    }
    Ok(ReplayOutcome {
        trace: trace.name.clone(),
        selector: policy.name().to_string(),
        backend: backend_name(backend).to_string(),
        steps: trace.steps.len(),
        lookups,
        jct_s: jct.as_secs_f64(),
        jct_ns: jct.as_nanos(),
        step_ns,
        messages,
        bytes,
    })
}

/// The backend's name as spelled on `--backend` flags.
pub fn backend_name(backend: Backend) -> &'static str {
    match backend {
        Backend::Threads => "threads",
        Backend::Events => "events",
        Backend::Dag => "dag",
    }
}

/// A recording failure surfaced through the replay error type: the
/// recording run *is* a simulation, so its errors are `SimError`s
/// except for `Unsupported`, which a valid trace cannot produce.
fn record_error_to_sim(e: RecordError) -> SimError {
    match e {
        RecordError::Sim(e) => e,
        RecordError::Unsupported { rank, what } => SimError::Deadlock {
            detail: format!("unsupported op while recording: rank {rank}: {what}"),
        },
        other => SimError::Deadlock {
            detail: format!("recording failed: {other}"),
        },
    }
}

/// Replays `trace` under several policies on one backend and returns
/// the outcomes in input order — the JCT comparison `colltune replay`
/// and the `replayrate` bench print.
///
/// # Errors
///
/// The first [`SimError`] any replay hits.
pub fn score_policies(
    cluster: &ClusterModel,
    trace: &Trace,
    policies: &[ReplayPolicy<'_>],
    backend: Backend,
    seed: u64,
) -> Result<Vec<ReplayOutcome>, SimError> {
    policies
        .iter()
        .map(|p| replay_trace(cluster, trace, p, backend, seed))
        .collect()
}

/// JCT degradation of `outcome` relative to `best`, in percent
/// (`0.0` for the best itself; the paper's "7297%" framing).
pub fn degradation_pct(outcome: &ReplayOutcome, best: &ReplayOutcome) -> f64 {
    if best.jct_ns == 0 {
        return 0.0;
    }
    (outcome.jct_ns as f64 / best.jct_ns as f64 - 1.0) * 100.0
}

/// Renders a JCT comparison as JSON: one entry per outcome plus the
/// headline degradation of each vs the fastest. An empty slice renders
/// an empty comparison.
pub fn comparison_json(cluster_name: &str, outcomes: &[ReplayOutcome]) -> Json {
    let Some(best) = outcomes.iter().min_by_key(|o| o.jct_ns).cloned() else {
        return Json::Obj(vec![("outcomes".into(), Json::Arr(Vec::new()))]);
    };
    Json::Obj(vec![
        ("cluster".into(), Json::Str(cluster_name.into())),
        (
            "trace".into(),
            Json::Str(
                outcomes
                    .first()
                    .map(|o| o.trace.clone())
                    .unwrap_or_default(),
            ),
        ),
        ("best".into(), Json::Str(best.selector.clone())),
        (
            "outcomes".into(),
            Json::Arr(
                outcomes
                    .iter()
                    .map(|o| {
                        let mut obj = o.to_json();
                        if let Json::Obj(fields) = &mut obj {
                            fields.push((
                                "degradation_pct".into(),
                                Json::Num(degradation_pct(o, &best)),
                            ));
                        }
                        obj
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Renders a JCT comparison as CSV (`selector,backend,steps,lookups,
/// jct_s,jct_ns,degradation_pct`). An empty slice renders the header
/// alone.
pub fn comparison_csv(outcomes: &[ReplayOutcome]) -> String {
    let mut out = String::from("selector,backend,steps,lookups,jct_s,jct_ns,degradation_pct\n");
    let Some(best) = outcomes.iter().min_by_key(|o| o.jct_ns).cloned() else {
        return out;
    };
    for o in outcomes {
        out.push_str(&format!(
            "{},{},{},{},{:.9},{},{:.2}\n",
            o.selector,
            o.backend,
            o.steps,
            o.lookups,
            o.jct_s,
            o.jct_ns,
            degradation_pct(o, &best)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{canned_dp, canned_pp};

    fn quiet_gros() -> ClusterModel {
        ClusterModel::gros().with_noise(collsel::netsim::NoiseParams::OFF)
    }

    #[test]
    fn backends_agree_on_jct_bit_for_bit() -> Result<(), SimError> {
        let cluster = quiet_gros();
        for trace in [canned_dp(), canned_pp()] {
            let outs: Vec<ReplayOutcome> = [Backend::Dag, Backend::Events, Backend::Threads]
                .into_iter()
                .map(|b| replay_trace(&cluster, &trace, &ReplayPolicy::Fixed, b, 11))
                .collect::<Result<_, _>>()?;
            assert_eq!(
                outs[0].jct_ns, outs[1].jct_ns,
                "{}: dag vs events",
                trace.name
            );
            assert_eq!(
                outs[0].jct_ns, outs[2].jct_ns,
                "{}: dag vs threads",
                trace.name
            );
            assert_eq!(outs[0].step_ns, outs[1].step_ns);
            assert_eq!(outs[0].step_ns, outs[2].step_ns);
            assert_eq!(outs[0].messages, outs[1].messages);
            assert!(outs[0].jct_ns > 0);
            assert_eq!(outs[0].lookups, trace.total_calls() as u64);
        }
        Ok(())
    }

    #[test]
    fn worst_policy_never_beats_tuned_by_construction() -> Result<(), SimError> {
        // Without a tuned model both Tuned and Worst degrade to the
        // fixed rules; the ranking-based inversion is covered by the
        // integration suite with a real model. Here: the degradation
        // arithmetic and CSV/JSON plumbing.
        let cluster = quiet_gros();
        let trace = canned_pp();
        let outs = score_policies(&cluster, &trace, &[ReplayPolicy::Fixed], Backend::Dag, 3)?;
        assert_eq!(degradation_pct(&outs[0], &outs[0]), 0.0);
        let csv = comparison_csv(&outs);
        assert!(csv.lines().count() == 2 && csv.contains("fixed,dag"));
        let json = comparison_json("gros", &outs);
        assert!(json.to_string_pretty().contains("degradation_pct"));
        Ok(())
    }
}
