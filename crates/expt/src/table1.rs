//! Table 1: estimated γ(P) on both clusters, side by side with the
//! paper's published values.

use crate::config::Scenario;
use crate::paper_ref::TABLE1_GAMMA;
use crate::report::{format_csv, format_table};
use collsel::estim::{estimate_gamma, GammaConfig, GammaEstimate};

/// One cluster's γ estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Cluster {
    /// Cluster name.
    pub cluster: String,
    /// The estimation result (table + raw T2 measurements).
    pub estimate: GammaEstimate,
}

/// The regenerated Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Result {
    /// One entry per cluster, in scenario order (Grisou, Gros).
    pub clusters: Vec<Table1Cluster>,
}

impl Table1Result {
    /// The estimated γ(P) for a cluster (by name), if measured.
    pub fn gamma(&self, cluster: &str, p: usize) -> Option<f64> {
        self.clusters
            .iter()
            .find(|c| c.cluster == cluster)
            .map(|c| c.estimate.table.gamma(p))
    }

    fn rows(&self) -> Vec<Vec<String>> {
        let width = self
            .clusters
            .iter()
            .map(|c| c.estimate.table.max_measured())
            .max()
            .unwrap_or(2);
        (3..=width)
            .map(|p| {
                let mut row = vec![p.to_string()];
                for c in &self.clusters {
                    row.push(format!("{:.3}", c.estimate.table.gamma(p)));
                }
                let paper = TABLE1_GAMMA.iter().find(|&&(pp, _, _)| pp == p);
                match paper {
                    Some(&(_, grisou, gros)) => {
                        row.push(format!("{grisou:.3}"));
                        row.push(format!("{gros:.3}"));
                    }
                    None => {
                        row.push("-".into());
                        row.push("-".into());
                    }
                }
                row
            })
            .collect()
    }

    /// Renders the aligned text table.
    pub fn to_text(&self) -> String {
        let mut headers: Vec<String> = vec!["P".into()];
        for c in &self.clusters {
            headers.push(format!("{} (ours)", c.cluster));
        }
        headers.push("grisou (paper)".into());
        headers.push("gros (paper)".into());
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        format!(
            "Table 1 — estimated gamma(P)\n\n{}",
            format_table(&headers_ref, &self.rows())
        )
    }

    /// Renders the CSV artifact.
    pub fn to_csv(&self) -> String {
        format_csv(
            &[
                "p",
                "grisou_ours",
                "gros_ours",
                "grisou_paper",
                "gros_paper",
            ],
            &self.rows(),
        )
    }
}

/// Regenerates Table 1: runs the Sect. 4.1 estimation on each scenario.
pub fn run_table1(scenarios: &[Scenario], gamma_cfg: &GammaConfig, seed: u64) -> Table1Result {
    let clusters = scenarios
        .iter()
        .enumerate()
        .map(|(i, sc)| Table1Cluster {
            cluster: sc.cluster.name().to_owned(),
            estimate: estimate_gamma(&sc.cluster, gamma_cfg, seed.wrapping_add(i as u64 * 101)),
        })
        .collect();
    Table1Result { clusters }
}

// JSON persistence (layout-compatible with the former serde derives).
collsel_support::json_struct!(Table1Cluster { cluster, estimate });
collsel_support::json_struct!(Table1Result { clusters });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{scenarios, Fidelity};
    use collsel::netsim::NoiseParams;

    #[test]
    fn table1_regenerates_close_to_paper() {
        let mut scs = scenarios(Fidelity::Quick);
        for sc in &mut scs {
            sc.cluster = sc.cluster.clone().with_noise(NoiseParams::OFF);
        }
        let cfg = GammaConfig {
            max_width: 7,
            ..GammaConfig::quick()
        };
        let t1 = run_table1(&scs, &cfg, 1);
        assert_eq!(t1.clusters.len(), 2);
        // Shape check against the paper's Table 1 values.
        for &(p, grisou_paper, gros_paper) in &TABLE1_GAMMA {
            let ours_grisou = t1.gamma("grisou", p).unwrap();
            let ours_gros = t1.gamma("gros", p).unwrap();
            assert!(
                (ours_grisou - grisou_paper).abs() < 0.25,
                "grisou gamma({p}) = {ours_grisou} vs paper {grisou_paper}"
            );
            assert!(
                (ours_gros - gros_paper).abs() < 0.25,
                "gros gamma({p}) = {ours_gros} vs paper {gros_paper}"
            );
        }
        let text = t1.to_text();
        assert!(text.contains("Table 1"));
        assert!(t1.to_csv().lines().count() >= 6);
    }
}
