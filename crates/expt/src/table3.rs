//! Table 3: selections of the model-based and Open MPI decision
//! functions against the measured best algorithm, with percentage
//! degradations — derived from the Fig. 5 sweeps at the paper's two
//! featured process counts (Grisou P = 90, Gros P = 100).

use crate::fig5::Fig5Result;
use crate::report::{format_csv, format_table, size_label};
use crate::sweep::SweepPanel;
use collsel::select::analysis::{summarise, SelectorSummary};

/// One cluster's Table 3 column set.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Cluster {
    /// Cluster name.
    pub cluster: String,
    /// Process count of the column (90 for Grisou, 100 for Gros in the
    /// paper).
    pub p: usize,
    /// The underlying sweep data.
    pub panel: SweepPanel,
    /// Summary of the model-based degradations.
    pub model_summary: SelectorSummary,
    /// Summary of the Open MPI degradations.
    pub openmpi_summary: SelectorSummary,
}

/// The regenerated Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Result {
    /// One entry per cluster.
    pub clusters: Vec<Table3Cluster>,
}

impl Table3Result {
    fn rows(panel: &SweepPanel) -> Vec<Vec<String>> {
        panel
            .points
            .iter()
            .map(|pt| {
                vec![
                    size_label(pt.m),
                    pt.best.name().to_owned(),
                    format!(
                        "{} ({:.0})",
                        pt.model_pick.name(),
                        pt.model_degradation_pct()
                    ),
                    format!(
                        "{} ({:.0})",
                        pt.openmpi_pick.alg.name(),
                        pt.openmpi_degradation_pct()
                    ),
                ]
            })
            .collect()
    }

    /// Renders the aligned text tables (one block per cluster).
    pub fn to_text(&self) -> String {
        let mut out = String::from(
            "Table 3 — selections vs the best performing algorithm\n\
             (degradation vs best, in percent, in parentheses)\n",
        );
        for c in &self.clusters {
            out.push_str(&format!("\nP = {}, MPI_Bcast, {}\n", c.p, c.cluster));
            out.push_str(&format_table(
                &["m", "best", "model-based (%)", "open mpi (%)"],
                &Self::rows(&c.panel),
            ));
            out.push_str(&format!(
                "model-based: near-optimal {:.0}% of cases, worst {:.0}%; \
                 open mpi: near-optimal {:.0}% of cases, worst {:.0}%\n",
                100.0 * c.model_summary.near_optimal_fraction,
                c.model_summary.max_degradation_pct,
                100.0 * c.openmpi_summary.near_optimal_fraction,
                c.openmpi_summary.max_degradation_pct,
            ));
        }
        out
    }

    /// Renders the CSV artifact.
    pub fn to_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .clusters
            .iter()
            .flat_map(|c| {
                c.panel.points.iter().map(|pt| {
                    vec![
                        c.cluster.clone(),
                        c.p.to_string(),
                        pt.m.to_string(),
                        pt.best.name().to_owned(),
                        pt.model_pick.name().to_owned(),
                        format!("{:.2}", pt.model_degradation_pct()),
                        pt.openmpi_pick.alg.name().to_owned(),
                        format!("{:.2}", pt.openmpi_degradation_pct()),
                    ]
                })
            })
            .collect();
        format_csv(
            &[
                "cluster",
                "p",
                "m_bytes",
                "best",
                "model_pick",
                "model_degradation_pct",
                "openmpi_pick",
                "openmpi_degradation_pct",
            ],
            &rows,
        )
    }
}

/// Derives Table 3 from the Fig. 5 sweeps at each cluster's featured
/// process count.
///
/// # Panics
///
/// Panics if a featured panel is missing from the Fig. 5 data.
pub fn table3_from_fig5(fig5: &Fig5Result, featured: &[(String, usize)]) -> Table3Result {
    let clusters = featured
        .iter()
        .map(|(cluster, p)| {
            let panel = fig5
                .panel(cluster, *p)
                .unwrap_or_else(|| panic!("no Fig. 5 panel for {cluster} P={p}"))
                .clone();
            let model_deg: Vec<f64> = panel
                .points
                .iter()
                .map(|pt| pt.model_degradation_pct())
                .collect();
            let ompi_deg: Vec<f64> = panel
                .points
                .iter()
                .map(|pt| pt.openmpi_degradation_pct())
                .collect();
            Table3Cluster {
                cluster: cluster.clone(),
                p: *p,
                model_summary: summarise(&model_deg),
                openmpi_summary: summarise(&ompi_deg),
                panel,
            }
        })
        .collect();
    Table3Result { clusters }
}

// JSON persistence (layout-compatible with the former serde derives).
collsel_support::json_struct!(Table3Cluster {
    cluster,
    p,
    panel,
    model_summary,
    openmpi_summary
});
collsel_support::json_struct!(Table3Result { clusters });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{scenarios, Fidelity};
    use crate::fig5::run_fig5;
    use collsel::netsim::NoiseParams;
    use collsel::{Tuner, TunerConfig};

    #[test]
    fn table3_derives_from_fig5() {
        let mut scs = scenarios(Fidelity::Quick);
        scs.truncate(1);
        scs[0].cluster = scs[0].cluster.clone().with_noise(NoiseParams::OFF);
        scs[0].msg_sizes = vec![8 * 1024, 512 * 1024];
        scs[0].fig5_ps = vec![16];
        scs[0].table3_p = 16;
        let tuned = vec![Tuner::new(scs[0].cluster.clone(), TunerConfig::quick(12)).tune()];
        let fig5 = run_fig5(&scs, &tuned, 5);
        let t3 = table3_from_fig5(&fig5, &[("grisou".into(), 16)]);
        assert_eq!(t3.clusters.len(), 1);
        let c = &t3.clusters[0];
        assert!(c.model_summary.max_degradation_pct >= 0.0);
        assert!(c.openmpi_summary.max_degradation_pct >= 0.0);
        let text = t3.to_text();
        assert!(text.contains("P = 16, MPI_Bcast, grisou"));
        assert_eq!(t3.to_csv().lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "no Fig. 5 panel")]
    fn missing_panel_panics() {
        let fig5 = Fig5Result { panels: vec![] };
        let _ = table3_from_fig5(&fig5, &[("grisou".into(), 90)]);
    }
}
