//! Re-render the Fig. 1 text artifact (table + ASCII chart) from a
//! previously saved `fig1.json`, without re-running the measurements.
//!
//! ```text
//! cargo run -p collsel-expt --example render_fig1 -- results/fig1.json [out.txt]
//! ```

use collsel_expt::fig1::Fig1Result;

fn main() {
    let mut args = std::env::args().skip(1);
    let input = args
        .next()
        .expect("usage: render_fig1 <fig1.json> [out.txt]");
    let json = std::fs::read_to_string(&input).expect("readable fig1.json");
    let fig1: Fig1Result = collsel_support::FromJson::from_json(
        &collsel_support::Json::parse(&json).expect("valid JSON in fig1.json"),
    )
    .expect("valid fig1.json");
    let text = fig1.to_text();
    match args.next() {
        Some(out) => {
            std::fs::write(&out, &text).expect("writable output");
            eprintln!("written to {out}");
        }
        None => println!("{text}"),
    }
}
