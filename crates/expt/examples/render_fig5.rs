//! Re-render the Fig. 5 text artifact (tables + ASCII charts) from a
//! previously saved `fig5.json`, without re-running the sweeps.
//!
//! ```text
//! cargo run -p collsel-expt --example render_fig5 -- results/fig5.json [out.txt]
//! ```

use collsel_expt::fig5::Fig5Result;

fn main() {
    let mut args = std::env::args().skip(1);
    let input = args
        .next()
        .expect("usage: render_fig5 <fig5.json> [out.txt]");
    let json = std::fs::read_to_string(&input).expect("readable fig5.json");
    let fig5: Fig5Result = collsel_support::FromJson::from_json(
        &collsel_support::Json::parse(&json).expect("valid JSON in fig5.json"),
    )
    .expect("valid fig5.json");
    let text = fig5.to_text();
    match args.next() {
        Some(out) => {
            std::fs::write(&out, &text).expect("writable output");
            eprintln!("written to {out}");
        }
        None => println!("{text}"),
    }
}
