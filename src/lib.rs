//! Workspace-level examples/tests package (see crates/core for the library facade).
