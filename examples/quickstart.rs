//! Quickstart: tune a cluster, inspect the estimated parameters, and
//! use the resulting decision function.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use collsel::netsim::{ClusterModel, NoiseParams};
use collsel::select::Selector;
use collsel::{Tuner, TunerConfig};

fn main() {
    // The simulated stand-in for the paper's Gros cluster (124 nodes,
    // 25 GbE). Noise off makes this demo exactly reproducible.
    let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
    println!(
        "cluster: {} ({} nodes x {} slots, {:.1} GB/s per NIC)",
        cluster.name(),
        cluster.nodes(),
        cluster.cpus_per_node(),
        cluster.bandwidth() / 1e9
    );

    // Run the paper's estimation pipeline at demo scale:
    //   1. gamma(P) from non-blocking linear-broadcast experiments;
    //   2. per-algorithm (alpha, beta) from bcast+gather experiments
    //      solved with Huber regression.
    println!("\ntuning (reduced scales; use TunerConfig::paper for full)...");
    let model = Tuner::new(cluster, TunerConfig::quick(16)).tune();

    println!("\nestimated gamma(P):");
    for (p, g) in model.gamma.table.pairs() {
        println!("  gamma({p}) = {g:.3}");
    }

    println!("\nper-algorithm Hockney parameters:");
    for (alg, h) in model.hockney_table() {
        println!("  {alg:<12} {h}");
    }

    // The tuned decision function: what the paper proposes to run
    // inside MPI_Bcast.
    let selector = model.selector();
    println!("\nruntime selections (P = 100):");
    for m in [4 * 1024, 64 * 1024, 1 << 20, 4 << 20] {
        let pick = selector.select(100, m);
        let ranking = selector.ranking(100, m);
        let runner_up = ranking[1].0;
        println!(
            "  {:>8} bytes -> {:<12} (runner-up {}, predicted {:.1}% slower)",
            m,
            pick.alg.name(),
            runner_up.name(),
            100.0 * (ranking[1].1 - ranking[0].1) / ranking[0].1
        );
    }
}
