//! Cluster tuning end-to-end: tune the model-based selector for a
//! cluster, then pit it against the native Open MPI decision function
//! and the measured best — a miniature of the paper's Table 3.
//!
//! ```text
//! cargo run --release --example cluster_tuning
//! ```

use collsel::coll::BcastAlg;
use collsel::estim::measure::bcast_time;
use collsel::estim::Precision;
use collsel::netsim::{ClusterModel, NoiseParams};
use collsel::select::{OpenMpiFixedSelector, Selector};
use collsel::{Tuner, TunerConfig};
use std::collections::BTreeMap;

fn main() {
    let cluster = ClusterModel::grisou().with_noise(NoiseParams::OFF);
    let p = 40;
    let seg = 8 * 1024;
    let precision = Precision::quick();

    println!("tuning model-based selector for {} ...", cluster.name());
    let tuned = Tuner::new(cluster.clone(), TunerConfig::quick(24)).tune();
    let model_sel = tuned.selector();
    let ompi_sel = OpenMpiFixedSelector;

    println!(
        "\n{:>8} {:>14} {:>18} {:>22}",
        "m", "best", "model-based", "open mpi"
    );
    let mut model_degs = Vec::new();
    let mut ompi_degs = Vec::new();
    for m in [8 * 1024, 64 * 1024, 512 * 1024, 2 << 20] {
        // Measure every algorithm at the paper's fixed 8 KB segments.
        let times: BTreeMap<BcastAlg, f64> = BcastAlg::ALL
            .iter()
            .map(|&alg| {
                (
                    alg,
                    bcast_time(&cluster, alg, p, m, seg, &precision, 7).mean,
                )
            })
            .collect();
        let (&best, &best_t) = times
            .iter()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();

        let model_pick = model_sel.select(p, m).alg;
        let model_deg = 100.0 * (times[&model_pick] - best_t) / best_t;

        let ompi_pick = ompi_sel.select(p, m);
        let ompi_t = bcast_time(
            &cluster,
            ompi_pick.alg,
            p,
            m,
            ompi_pick.effective_seg_size(m),
            &precision,
            7,
        )
        .mean;
        let ompi_deg = 100.0 * (ompi_t - best_t) / best_t;

        model_degs.push(model_deg);
        ompi_degs.push(ompi_deg);
        println!(
            "{:>8} {:>14} {:>13} (+{:>2.0}%) {:>16} (+{:>3.0}%)",
            m,
            best.name(),
            model_pick.name(),
            model_deg,
            ompi_pick.alg.name(),
            ompi_deg
        );
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nmean degradation vs best: model-based {:.0}%, open mpi {:.0}%",
        avg(&model_degs),
        avg(&ompi_degs)
    );
    println!("(the paper's claim: the tuned model column stays near zero)");
}
