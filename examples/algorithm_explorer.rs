//! Algorithm explorer: measure every broadcast algorithm over a sweep
//! of message sizes on a simulated cluster and print the performance
//! matrix — the raw material behind the paper's Fig. 5.
//!
//! ```text
//! cargo run --release --example algorithm_explorer [ranks] [cluster]
//! ```
//!
//! `ranks` defaults to 32; `cluster` is `grisou` or `gros` (default).

use collsel::coll::BcastAlg;
use collsel::estim::measure::bcast_time;
use collsel::estim::Precision;
use collsel::netsim::{ClusterModel, NoiseParams};

fn main() {
    let mut args = std::env::args().skip(1);
    let ranks: usize = args
        .next()
        .map(|s| s.parse().expect("ranks must be an integer"))
        .unwrap_or(32);
    let cluster = match args.next().as_deref() {
        Some("grisou") => ClusterModel::grisou(),
        None | Some("gros") => ClusterModel::gros(),
        Some(other) => panic!("unknown cluster `{other}` (grisou|gros)"),
    }
    .with_noise(NoiseParams::OFF);
    assert!(
        ranks <= cluster.max_ranks(),
        "{} supports at most {} ranks",
        cluster.name(),
        cluster.max_ranks()
    );

    let seg = 8 * 1024;
    let sizes: Vec<usize> = (0..8).map(|i| (8 * 1024) << i).collect(); // 8 KB .. 1 MB
    let precision = Precision::quick();

    println!(
        "broadcast times (ms) on {} with P = {ranks}, 8 KB segments\n",
        cluster.name()
    );
    print!("{:>8}", "m");
    for alg in BcastAlg::ALL {
        print!("{:>14}", alg.name());
    }
    println!("{:>14}", "winner");

    for &m in &sizes {
        print!("{:>8}", format_size(m));
        let mut best = (BcastAlg::Linear, f64::MAX);
        let mut row = Vec::new();
        for alg in BcastAlg::ALL {
            let t = bcast_time(&cluster, alg, ranks, m, seg, &precision, 42).mean;
            if t < best.1 {
                best = (alg, t);
            }
            row.push(t);
        }
        for t in row {
            print!("{:>14.4}", t * 1e3);
        }
        println!("{:>14}", best.0.name());
    }

    println!(
        "\nReading guide: 'linear' wins only at small m / few ranks; pipelined\n\
         trees take over as n_s = m / m_s grows; 'chain' needs very large m\n\
         to amortise its P-deep pipeline — exactly the trade-offs the paper's\n\
         models capture."
    );
}

fn format_size(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{}MB", bytes >> 20)
    } else {
        format!("{}KB", bytes >> 10)
    }
}
