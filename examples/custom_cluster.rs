//! Custom cluster: describe your own platform with the builder, then
//! watch how the optimal broadcast algorithm shifts as the network
//! changes — the portability argument for model-based selection.
//!
//! ```text
//! cargo run --release --example custom_cluster
//! ```

use collsel::netsim::{ClusterModel, NoiseParams, SimSpan};
use collsel::select::Selector;
use collsel::{Tuner, TunerConfig};

fn build(name: &str, gbps: f64, latency_us: u64) -> ClusterModel {
    ClusterModel::builder(name, 64)
        .bandwidth_gbps(gbps)
        .wire_latency(SimSpan::from_micros(latency_us))
        .switch_hops(2, SimSpan::from_micros(1))
        .noise(NoiseParams::OFF)
        .build()
}

fn main() {
    // Three hypothetical platforms: a slow high-latency campus
    // network, a balanced 10 GbE cluster, and a fast low-latency
    // fabric.
    let platforms = [
        ("campus-1g", build("campus-1g", 1.0, 200)),
        ("balanced-10g", build("balanced-10g", 10.0, 50)),
        ("fast-100g", build("fast-100g", 100.0, 5)),
    ];

    let p = 48;
    let sizes = [8 * 1024, 128 * 1024, 4 << 20];

    println!("how the tuned selection shifts with the platform (P = {p}):\n");
    print!("{:>14}", "m \\ platform");
    for (name, _) in &platforms {
        print!("{name:>16}");
    }
    println!();

    let mut tuned = Vec::new();
    for (_, cluster) in &platforms {
        tuned.push(
            Tuner::new(cluster.clone(), TunerConfig::quick(16))
                .tune()
                .selector(),
        );
    }

    for &m in &sizes {
        print!("{:>14}", format!("{}KB", m / 1024));
        for selector in &tuned {
            print!("{:>16}", selector.select(p, m).alg.name());
        }
        println!();
    }

    println!(
        "\nA fixed decision function (like Open MPI's) bakes one platform's\n\
         trade-offs into constants; the model-based selector re-derives them\n\
         from each platform's own gamma and per-algorithm (alpha, beta)."
    );

    // Show the gamma difference driving the shift.
    println!("\nestimated gamma(7) per platform:");
    for ((name, cluster), _) in platforms.iter().zip(&tuned) {
        let model = Tuner::new(cluster.clone(), TunerConfig::quick(8)).tune();
        println!("  {name:>14}: {:.3}", model.gamma.table.gamma(7));
    }
}
