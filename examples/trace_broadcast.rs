//! Trace a broadcast: run one collective with transfer tracing enabled,
//! print a contention summary, and write a Chrome-tracing JSON you can
//! open at `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! ```text
//! cargo run --release --example trace_broadcast [linear|chain|k_chain|split_binary|binary|binomial]
//! ```

use collsel::coll::{bcast, BcastAlg};
use collsel::mpi::simulate_traced;
use collsel::netsim::trace::{summarize, to_chrome_trace};
use collsel::netsim::{ClusterModel, NoiseParams};
use collsel_support::Bytes;

fn main() {
    let alg: BcastAlg = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("unknown algorithm name"))
        .unwrap_or(BcastAlg::Binomial);

    let cluster = ClusterModel::gros().with_noise(NoiseParams::OFF);
    let p = 16;
    let m = 128 * 1024;
    let seg = 8 * 1024;

    let out = simulate_traced(&cluster, p, 0, move |ctx| {
        let msg = (ctx.rank() == 0).then(|| Bytes::from(vec![0x5au8; m]));
        bcast(ctx, alg, 0, msg, m, seg).len()
    })
    .expect("broadcast cannot deadlock");

    let s = summarize(&out.report.trace);
    println!("algorithm     : {alg}");
    println!("ranks/message : {p} ranks, {m} bytes, {seg}-byte segments");
    println!("transfers     : {}", s.transfers);
    println!("bytes moved   : {}", s.bytes);
    println!("finished at   : {}", s.last_delivery);
    println!(
        "NIC queueing  : mean {:.2} us, max {:.2} us",
        s.mean_queueing * 1e6,
        s.max_queueing * 1e6
    );

    // Who queued the longest? (Root-adjacent edges, for tree algorithms.)
    let mut worst = out.report.trace.clone();
    worst.sort_by(|a, b| b.queueing().partial_cmp(&a.queueing()).unwrap());
    println!("\nworst queueing transfers:");
    for r in worst.iter().take(5) {
        println!(
            "  {:>3} -> {:<3} {:>7} B  queued {:>8.2} us",
            r.src,
            r.dst,
            r.bytes,
            r.queueing() * 1e6
        );
    }

    let path = std::env::temp_dir().join(format!("collsel-trace-{alg}.json"));
    std::fs::write(&path, to_chrome_trace(&out.report.trace)).expect("write trace");
    println!("\nchrome trace written to {}", path.display());
}
